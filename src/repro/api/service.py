"""The query plane: ``QueryService`` over a relying party.

One service wraps one :class:`~repro.rp.RelyingParty` and serves five
endpoints, all deterministic on the simulated clock:

- ``lookup_prefix(prefix)`` — the covering VRPs of a prefix (any origin);
- ``lookup_asn(asn)`` — every VRP authorizing an origin AS;
- ``validate_route(prefix, origin)`` — full RFC 6811 validation with
  evidence, via the unified :func:`repro.rp.origin.validate`;
- ``history()`` — the bounded ring of refresh epochs (serial, content
  hash, added/removed VRPs);
- ``diff(from_serial)`` — the net VRP change between two served epochs,
  the monitor-facing "what did the authorities just do to me" query.

Consistency contract: **every answer is computed against the backing
relying party's live VRP set.**  Each request first syncs the service's
snapshot with ``rp.last_run`` (an identity check, then a content hash),
so a refresh performed behind the service's back — including a faulted
one mid-chaos-campaign — is visible to the very next query.  The
benchmark's campaign invariant holds the service to exactly that.

Serial numbers are content-addressed like the RTR cache server's: a
refresh that validates to an identical VRP set does not bump the serial
and keeps every cached response warm; any real change bumps it and
records an added/removed delta in the history ring.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Iterable

from ..rp import RelyingParty
from ..rp.origin import OriginValidationOutcome, validate
from ..rp.vrp import VRP, VrpSet
from ..simtime import Clock
from ..telemetry import MetricsRegistry, default_registry
from .ratelimit import RateLimitConfig, TokenBucket
from .shard import ShardRouter

__all__ = [
    "ApiConfig",
    "ApiResponse",
    "HistoryEntry",
    "QueryService",
    "QueryStatus",
    "VrpDiff",
]

# Most clients a service tracks rate-limit state for; beyond this the
# least-recently-seen client's bucket is dropped (and refills on return).
_MAX_TRACKED_CLIENTS = 4096


class QueryStatus:
    """Response outcomes (string constants, stable API)."""

    OK = "ok"
    RATE_LIMITED = "rate-limited"
    UNKNOWN_SERIAL = "unknown-serial"


@dataclass(frozen=True)
class ApiConfig:
    """Shape of one query service."""

    shards: int = 4                 # logical request-routing partitions
    cache_capacity: int = 4096      # response-cache entries, all shards
    history_depth: int = 32         # refresh epochs kept for diff queries
    rate_limit: RateLimitConfig | None = field(
        default_factory=RateLimitConfig
    )                               # None disables rate limiting

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard: {self.shards}")
        if self.history_depth < 1:
            raise ValueError(f"history depth must be >= 1: {self.history_depth}")


@dataclass(frozen=True)
class HistoryEntry:
    """One served epoch: the VRP set's identity and its delta."""

    serial: int
    timestamp: int               # simulated time the epoch was adopted
    content_hash: str
    vrp_count: int
    added: tuple[VRP, ...]       # vs the previous served epoch
    removed: tuple[VRP, ...]


@dataclass(frozen=True)
class VrpDiff:
    """Net VRP change between two served epochs."""

    from_serial: int
    to_serial: int
    added: tuple[VRP, ...]
    removed: tuple[VRP, ...]

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


@dataclass(frozen=True)
class ApiResponse:
    """Envelope every endpoint returns."""

    status: str                  # a QueryStatus constant
    serial: int                  # served epoch
    content_hash: str            # VRP set fingerprint the answer is for
    payload: object              # endpoint-specific; None unless OK
    cached: bool                 # answered from the response cache
    shard: int                   # shard that handled the request

    @property
    def ok(self) -> bool:
        return self.status == QueryStatus.OK


class QueryService:
    """Origin-validation-as-a-service over one relying party."""

    def __init__(
        self,
        rp: RelyingParty,
        *,
        config: ApiConfig | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.rp = rp
        self.config = config if config is not None else ApiConfig()
        self._clock = clock if clock is not None else rp.clock
        self.metrics = metrics if metrics is not None else default_registry()
        self._router = ShardRouter(
            self.config.shards, self.config.cache_capacity, self.metrics
        )
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._history: deque[HistoryEntry] = deque(
            maxlen=self.config.history_depth
        )
        self._m_refreshes = self.metrics.counter(
            "repro_api_refreshes_total",
            help="refresh cycles driven through the query service",
        )
        self._m_rate_limited = self.metrics.counter(
            "repro_api_rate_limited_total",
            help="requests rejected by the per-client token bucket",
        )
        self._m_serial = self.metrics.gauge(
            "repro_api_serial", help="current served epoch serial"
        )
        # Genesis snapshot: whatever the RP currently serves (usually the
        # empty pre-first-refresh set) becomes serial 0.
        self._vrps: VrpSet = rp.vrps
        self._hash: str = self._vrps.content_hash()
        self._serial = 0
        self._history.append(HistoryEntry(
            serial=0,
            timestamp=self._clock.now,
            content_hash=self._hash,
            vrp_count=len(self._vrps),
            added=tuple(self._vrps),
            removed=(),
        ))

    # -- epoch management ----------------------------------------------------

    def refresh(self):
        """Drive one refresh of the backing RP and adopt the result."""
        report = self.rp.refresh()
        self._m_refreshes.inc()
        self._sync()
        return report

    def _sync(self) -> None:
        """Adopt the backing RP's live VRP set if it changed.

        Identity check first (refreshes reuse the same ``VrpSet`` object
        until a new run lands), content hash second (a refresh that
        validated to identical content is *not* a new epoch).
        """
        live = self.rp.vrps
        if live is self._vrps:
            return
        live_hash = live.content_hash()
        if live_hash == self._hash:
            self._vrps = live
            return
        added = tuple(live.added(self._vrps))
        removed = tuple(live.removed(self._vrps))
        self._vrps = live
        self._hash = live_hash
        self._serial += 1
        self._m_serial.set(self._serial)
        self._history.append(HistoryEntry(
            serial=self._serial,
            timestamp=self._clock.now,
            content_hash=live_hash,
            vrp_count=len(live),
            added=added,
            removed=removed,
        ))

    @property
    def serial(self) -> int:
        self._sync()
        return self._serial

    @property
    def content_hash(self) -> str:
        self._sync()
        return self._hash

    # -- the request path ----------------------------------------------------

    def _allow(self, client: str, now: int) -> bool:
        limit = self.config.rate_limit
        if limit is None:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(limit, now=now)
            if len(self._buckets) > _MAX_TRACKED_CLIENTS:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.try_acquire(now)

    def _serve(self, kind, cache_epoch, query_key, compute, size_of, client):
        """The shared request path: sync, route, rate-limit, cache, count.

        *cache_epoch* is the key's first component: the content hash for
        content queries (same content → same answer, even across an
        A→B→A flap), the serial for history-shaped queries (whose answer
        depends on the ring, not just the content).
        """
        shard = self._router.route(query_key)
        if not self._allow(client, self._clock.now):
            shard.count_request(kind, QueryStatus.RATE_LIMITED)
            self._m_rate_limited.inc()
            return ApiResponse(
                status=QueryStatus.RATE_LIMITED, serial=self._serial,
                content_hash=self._hash, payload=None, cached=False,
                shard=shard.index,
            )
        key = (cache_epoch, kind, query_key)
        payload = shard.cache.get(key)
        cached = payload is not None
        shard.count_cache("hit" if cached else "miss")
        if not cached:
            payload = compute()
            shard.cache.put(key, payload)
        shard.count_request(kind, QueryStatus.OK)
        shard.observe_response_size(size_of(payload))
        return ApiResponse(
            status=QueryStatus.OK, serial=self._serial,
            content_hash=self._hash, payload=payload, cached=cached,
            shard=shard.index,
        )

    # -- endpoints -----------------------------------------------------------

    def lookup_prefix(self, prefix, *, client: str = "anonymous") -> ApiResponse:
        """The covering VRPs of *prefix* (any origin), least-specific first."""
        self._sync()
        text = str(prefix)
        vrps = self._vrps
        return self._serve(
            "lookup_prefix", self._hash, text,
            lambda: tuple(vrps.covering(_as_prefix(prefix))),
            len, client,
        )

    def lookup_asn(self, asn, *, client: str = "anonymous") -> ApiResponse:
        """Every VRP authorizing origin *asn*, sorted."""
        self._sync()
        vrps = self._vrps
        return self._serve(
            "lookup_asn", self._hash, f"AS{int(asn)}",
            lambda: vrps.by_asn(asn),
            len, client,
        )

    def validate_route(
        self, prefix, origin, *, client: str = "anonymous"
    ) -> ApiResponse:
        """RFC 6811 validation of one announcement, with evidence."""
        self._sync()
        vrps = self._vrps
        return self._serve(
            "validate", self._hash, f"{prefix}|AS{int(origin)}",
            lambda: validate(prefix, origin, vrps),
            lambda outcome: len(outcome.covering),
            client,
        )

    def history(self, *, client: str = "anonymous") -> ApiResponse:
        """The served-epoch ring, oldest first (bounded by history_depth)."""
        self._sync()
        entries = tuple(self._history)
        return self._serve(
            "history", self._serial, "history",
            lambda: entries,
            lambda payload: 0,
            client,
        )

    def diff(
        self, from_serial: int, to_serial: int | None = None,
        *, client: str = "anonymous",
    ) -> ApiResponse:
        """Net VRP change between two served epochs.

        Epochs older than the history window answer ``unknown-serial`` —
        the bounded-memory tradeoff, mirroring an RTR cache's Cache Reset
        when a router is too far behind.
        """
        self._sync()
        to_serial = self._serial if to_serial is None else to_serial
        query_key = f"diff|{from_serial}|{to_serial}"
        shard = self._router.route(query_key)
        oldest = self._history[0].serial
        if not (oldest - 1 <= from_serial <= to_serial <= self._serial):
            shard.count_request("diff", QueryStatus.UNKNOWN_SERIAL)
            return ApiResponse(
                status=QueryStatus.UNKNOWN_SERIAL, serial=self._serial,
                content_hash=self._hash, payload=None, cached=False,
                shard=shard.index,
            )
        entries = [e for e in self._history
                   if from_serial < e.serial <= to_serial]
        return self._serve(
            "diff", self._serial, query_key,
            lambda: _net_diff(from_serial, to_serial, entries),
            lambda payload: len(payload.added) + len(payload.removed),
            client,
        )

    # -- introspection -------------------------------------------------------

    def cache_stats(self):
        """Aggregated (hits, misses, evictions) across all shards."""
        return self._router.cache_stats()

    @property
    def shard_count(self) -> int:
        return len(self._router)


def _as_prefix(prefix):
    from ..resources import Prefix

    return prefix if isinstance(prefix, Prefix) else Prefix.parse(str(prefix))


def _net_diff(
    from_serial: int, to_serial: int, entries: Iterable[HistoryEntry]
) -> VrpDiff:
    """Fold per-epoch deltas into one net added/removed pair.

    A VRP added then removed (or vice versa) inside the window cancels
    out, so the diff describes the *net* change — what a monitor
    comparing only the endpoints would see.
    """
    net_added: set[VRP] = set()
    net_removed: set[VRP] = set()
    for entry in entries:
        for vrp in entry.added:
            if vrp in net_removed:
                net_removed.discard(vrp)
            else:
                net_added.add(vrp)
        for vrp in entry.removed:
            if vrp in net_added:
                net_added.discard(vrp)
            else:
                net_removed.add(vrp)
    return VrpDiff(
        from_serial=from_serial,
        to_serial=to_serial,
        added=tuple(sorted(net_added)),
        removed=tuple(sorted(net_removed)),
    )
