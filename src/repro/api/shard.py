"""N-shard request routing with per-shard telemetry.

A production query plane spreads request handling across shards; here the
shards are logical partitions — each owns a slice of the bounded response
cache and its own telemetry children — and routing is a deterministic
CRC32 of the query key (``zlib.crc32``, *not* ``hash()``, which is
salted per process and would unbalance replayed runs).

Per-shard metrics (all on the service's registry):

- ``repro_api_requests_total{shard,kind,status}`` — requests handled,
  by endpoint and outcome (``ok`` / ``rate-limited`` / ``unknown-serial``).
- ``repro_api_cache_total{shard,result}`` — response-cache hits/misses.
- ``repro_api_response_vrps{shard}`` — histogram of VRPs per answer, the
  shard's work/response-size distribution.

Counter children are bound once per (shard, kind, status) at first use so
the per-query hot path is a single attribute increment — the same trick
the fetch pipeline uses to stay under the telemetry overhead budget.
"""

from __future__ import annotations

import zlib

from ..telemetry import MetricsRegistry
from .cache import ResponseCache

__all__ = ["Shard", "ShardRouter"]

# Response-size buckets: answers are usually a handful of VRPs; the tail
# (lookup_asn over a big holder) is what the histogram is for.
RESPONSE_VRP_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0,
                                           64.0, 256.0)


class Shard:
    """One logical partition: a cache slice plus bound metric children."""

    __slots__ = ("index", "cache", "_requests", "_cache_metric",
                 "_histogram", "_bound_requests", "_bound_cache")

    def __init__(self, index: int, cache_capacity: int,
                 metrics: MetricsRegistry):
        self.index = index
        self.cache = ResponseCache(cache_capacity)
        self._requests = metrics.counter(
            "repro_api_requests_total",
            help="query-plane requests, by shard, endpoint kind, and outcome",
            labelnames=("shard", "kind", "status"),
        )
        self._cache_metric = metrics.counter(
            "repro_api_cache_total",
            help="response-cache lookups, by shard and result",
            labelnames=("shard", "result"),
        )
        self._histogram = metrics.histogram(
            "repro_api_response_vrps",
            buckets=RESPONSE_VRP_BUCKETS,
            help="VRPs per served answer (per-shard response-size "
                 "distribution)",
            labelnames=("shard",),
        ).labels(shard=str(index))
        self._bound_requests: dict[tuple[str, str], object] = {}
        self._bound_cache = {
            result: self._cache_metric.labels(shard=str(index), result=result)
            for result in ("hit", "miss")
        }

    def count_request(self, kind: str, status: str) -> None:
        child = self._bound_requests.get((kind, status))
        if child is None:
            child = self._bound_requests[(kind, status)] = (
                self._requests.labels(
                    shard=str(self.index), kind=kind, status=status
                )
            )
        child.inc()

    def count_cache(self, result: str) -> None:
        self._bound_cache[result].inc()

    def observe_response_size(self, vrps: int) -> None:
        self._histogram.observe(float(vrps))


class ShardRouter:
    """Deterministic query-key → shard routing over *shards* partitions."""

    __slots__ = ("shards",)

    def __init__(self, shards: int, cache_capacity: int,
                 metrics: MetricsRegistry):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        # Split the cache budget across shards, at least one entry each.
        per_shard = max(1, cache_capacity // shards)
        self.shards = tuple(
            Shard(index, per_shard, metrics) for index in range(shards)
        )

    def route(self, query_key: str) -> Shard:
        """The owning shard for *query_key* (stable across processes)."""
        digest = zlib.crc32(query_key.encode("utf-8"))
        return self.shards[digest % len(self.shards)]

    def cache_stats(self):
        """Aggregated (hits, misses, evictions) across every shard."""
        hits = misses = evictions = 0
        for shard in self.shards:
            hits += shard.cache.stats.hits
            misses += shard.cache.stats.misses
            evictions += shard.cache.stats.evictions
        return hits, misses, evictions

    def __len__(self) -> int:
        return len(self.shards)
