"""Bounded LRU response cache keyed on VRP-set content hash + query.

Every cache key carries the serving VRP set's
:meth:`~repro.rp.vrp.VrpSet.content_hash` as its first component.  That
is the whole invalidation story: a refresh that changes nothing leaves
the hash — and therefore every cached answer — intact, while any VRP
change rotates the hash so *every* affected entry misses and is
recomputed against the new set.  No entry is ever served stale; entries
for dead epochs simply age out of the LRU tail.

The capacity bound makes the cache safe under adversarial query streams
(the Stalloris lesson applied to the serving side: an attacker who
enumerates unique queries evicts, but cannot grow memory).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["CacheStats", "ResponseCache"]

_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResponseCache:
    """A bounded LRU mapping ``(content_hash, query...)`` keys to answers."""

    __slots__ = ("capacity", "stats", "_entries")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable):
        """The cached answer for *key*, or ``None`` on miss.

        ``None`` is never a legal cached value here (every API answer is
        a response object), so the sentinel collapses to ``None`` safely.
        """
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"ResponseCache({len(self._entries)}/{self.capacity} "
                f"entries, {self.stats.hit_rate:.0%} hit rate)")
