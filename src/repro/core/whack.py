"""ROA whacking: the paper's attack taxonomy, planned and executed.

"We say that an RPKI manipulator *whacks* a target ROA, regardless whether
this is accomplished by a known method above or by a new method below"
(paper, Section 3).  The methods:

==========================  ======================================================
method                      paper reference
==========================  ======================================================
``REVOKE_CHILD_CERT``       Section 3.1 opening — the blunt instrument: revoke the
                            RC above the target, whacking its whole subtree.
``DELETE_OWN_ROA``          Side Effect 2 — the manipulator issued the ROA itself
                            and simply deletes (or transparently revokes) it.
``OVERWRITE_SHRINK``        Side Effect 3 — remove, from the RC chain above the
                            target, a hole of address space inside the target
                            ROA; if the hole overlaps nothing else, zero
                            collateral and zero reissues.
``MAKE_BEFORE_BREAK``       Figure 3 — when every candidate hole damages other
                            descendants, first reissue the damaged objects as
                            the manipulator's own, then shrink.
==========================  ======================================================

For targets deeper than grandchildren (Side Effect 4), ``OVERWRITE_SHRINK``
/ ``MAKE_BEFORE_BREAK`` generalize: shrinking the manipulator's direct
child RC damages the intermediate RC chain down to the target's issuer, and
every damaged certificate (and sibling ROA) must be suspiciously reissued —
"this whacking requires more suspiciously-reissued objects, and could be
easier to detect."

:func:`plan_whack` chooses the cheapest strategy and returns a
:class:`WhackPlan` with the full damage accounting *before* anything is
touched; :func:`execute_whack` applies it to the CA engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..resources import Prefix, ResourceSet
from ..rpki import CertificateAuthority, ResourceCertificate, Roa, cert_file_name
from ..rpki.roa import RoaPrefix
from .errors import WhackError

__all__ = [
    "WhackMethod",
    "DamagedObject",
    "WhackPlan",
    "plan_whack",
    "execute_whack",
    "find_hole",
    "collateral_of_revocation",
    "subtree_roas",
]

# How far below the target prefix's own length we search for a clean hole.
_MAX_HOLE_EXTRA_BITS = 8
# BGP practice bounds granularity at /24 for IPv4 (paper, Section 7) — but
# a *hole* need not be routable, so we allow down to /30 before giving up.
_MAX_HOLE_LENGTH_V4 = 30


class WhackMethod(enum.Enum):
    REVOKE_CHILD_CERT = "revoke-child-cert"
    DELETE_OWN_ROA = "delete-own-roa"
    OVERWRITE_SHRINK = "overwrite-shrink"
    MAKE_BEFORE_BREAK = "make-before-break"


@dataclass(frozen=True)
class DamagedObject:
    """One object invalidated as a consequence of a whack step."""

    kind: str            # "roa" or "rc"
    holder: str          # handle of the authority whose object it is
    description: str     # human-readable identity

    def __str__(self) -> str:
        return f"{self.kind} {self.description} (held by {self.holder})"


@dataclass
class WhackPlan:
    """A fully costed plan to whack one target ROA.

    ``collateral`` is what stays broken; ``reissued`` is what the
    manipulator must suspiciously republish as its own to avoid breaking
    it ("make-before-break").  A stealthy plan has empty collateral; a
    quiet one also has no reissues.
    """

    manipulator: CertificateAuthority
    target: Roa
    target_holder: CertificateAuthority
    method: WhackMethod
    hole: Prefix | None = None
    shrink_child: CertificateAuthority | None = None
    collateral: list[DamagedObject] = field(default_factory=list)
    reissued: list[DamagedObject] = field(default_factory=list)
    # Damaged intermediate RCs needing replacement (deep whacking).
    damaged_certs: list[ResourceCertificate] = field(default_factory=list)
    damaged_roas: list[tuple[CertificateAuthority, str, Roa]] = field(
        default_factory=list
    )

    @property
    def suspicious_reissue_count(self) -> int:
        return len(self.reissued)

    @property
    def collateral_count(self) -> int:
        return len(self.collateral)

    def describe(self) -> str:
        lines = [
            f"whack {self.target.describe()} held by "
            f"{self.target_holder.handle!r}",
            f"  manipulator : {self.manipulator.handle}",
            f"  method      : {self.method.value}",
        ]
        if self.hole is not None:
            lines.append(f"  hole        : {self.hole}")
        if self.reissued:
            lines.append(f"  reissued    : {len(self.reissued)} object(s)")
            lines.extend(f"    - {d}" for d in self.reissued)
        if self.collateral:
            lines.append(f"  collateral  : {len(self.collateral)} object(s)")
            lines.extend(f"    - {d}" for d in self.collateral)
        else:
            lines.append("  collateral  : none")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# analysis helpers
# ---------------------------------------------------------------------------


def subtree_roas(
    authority: CertificateAuthority,
) -> list[tuple[CertificateAuthority, str, Roa]]:
    """Every ROA issued in *authority*'s subtree, (holder, name, roa)."""
    out = [(authority, name, roa) for name, roa in authority.issued_roas.items()]
    for child in authority.children():
        out.extend(subtree_roas(child))
    return out


def collateral_of_revocation(
    child: CertificateAuthority, target: Roa | None
) -> list[DamagedObject]:
    """What revoking *child*'s RC whacks, beyond the target itself.

    For Figure 2: revoking Continental Broadband to kill the /20 target
    "would whack four additional ROAs as collateral damage."  With
    ``target=None`` everything in the subtree counts (pure reclamation).
    """
    damaged = []
    for holder, _name, roa in subtree_roas(child):
        if target is not None and roa == target:
            continue
        damaged.append(DamagedObject("roa", holder.handle, roa.describe()))
    for grandchild in child.children():
        damaged.append(DamagedObject(
            "rc", grandchild.handle,
            f"RC {grandchild.certificate.ip_resources}",
        ))
    return damaged


def _authority_chain(
    manipulator: CertificateAuthority, holder: CertificateAuthority
) -> list[CertificateAuthority]:
    """The path [manipulator, ..., holder]; raises if not an ancestor."""
    chain = [holder]
    current = holder
    while current is not manipulator:
        parent = current.parent
        if parent is None:
            raise WhackError(
                f"{manipulator.handle} is not an ancestor of {holder.handle}"
            )
        chain.append(parent)
        current = parent
    chain.reverse()
    return chain


def _subtree_objects(
    authority: CertificateAuthority,
) -> list[tuple[str, CertificateAuthority, object]]:
    """All (kind, holder, object) pairs in the subtree rooted at a child RC.

    Includes the authority's own RC, every descendant RC, and every ROA.
    """
    out: list[tuple[str, CertificateAuthority, object]] = []
    out.append(("rc", authority, authority.certificate))
    for _name, roa in authority.issued_roas.items():
        out.append(("roa", authority, roa))
    for child in authority.children():
        out.extend(_subtree_objects(child))
    return out


def _overlaps_hole(kind: str, obj, hole: Prefix) -> bool:
    if kind == "rc":
        return obj.ip_resources.overlaps(hole)
    return any(rp.prefix.overlaps(hole) for rp in obj.prefixes)


def find_hole(
    shrink_child: CertificateAuthority,
    target: Roa,
) -> tuple[Prefix, list[tuple[str, CertificateAuthority, object]]]:
    """Choose the hole to punch and report what it damages.

    Scans subprefixes of the target's prefix, shortest (one hole the size
    of the whole ROA) to longest, and returns the candidate that damages
    the fewest other objects in the subtree under *shrink_child* (the
    manipulator's direct child whose RC will be overwritten).  The target
    itself is never counted as damage.
    """
    target_prefixes = [rp.prefix for rp in target.prefixes]
    objects = [
        (kind, holder, obj)
        for kind, holder, obj in _subtree_objects(shrink_child)
        if not (kind == "roa" and obj == target)
    ]

    best: tuple[Prefix, list] | None = None
    for base in target_prefixes:
        max_length = min(
            base.length + _MAX_HOLE_EXTRA_BITS,
            _MAX_HOLE_LENGTH_V4 if base.afi.bits == 32 else base.afi.bits,
        )
        # Longest candidates first: the smallest hole that cleanly whacks
        # the target removes the least address space from the child.
        for length in range(max_length, base.length - 1, -1):
            for candidate in base.subprefixes(length):
                damage = [
                    (kind, holder, obj)
                    for kind, holder, obj in objects
                    if _overlaps_hole(kind, obj, candidate)
                ]
                # The shrink target's own RC is overwritten deliberately,
                # not damaged.
                damage = [
                    d for d in damage
                    if not (d[0] == "rc" and d[1] is shrink_child)
                ]
                if not damage:
                    return candidate, damage
                if best is None or len(damage) < len(best[1]):
                    best = (candidate, damage)
    assert best is not None
    return best


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_whack(
    manipulator: CertificateAuthority,
    target: Roa,
    target_holder: CertificateAuthority,
    *,
    allow_reissue: bool = True,
) -> WhackPlan:
    """Plan the cheapest whack of *target* available to *manipulator*.

    ``allow_reissue=False`` forbids make-before-break, in which case an
    unavoidable damage set becomes collateral (the blunt outcome).
    """
    if target_holder is manipulator:
        return WhackPlan(
            manipulator=manipulator,
            target=target,
            target_holder=target_holder,
            method=WhackMethod.DELETE_OWN_ROA,
        )

    chain = _authority_chain(manipulator, target_holder)
    shrink_child = chain[1]  # the manipulator's direct child on the path
    hole, damage = find_hole(shrink_child, target)

    damaged_certs = [obj for kind, _h, obj in damage if kind == "rc"]
    damaged_roas_raw = [(h, obj) for kind, h, obj in damage if kind == "roa"]
    damaged_roas: list[tuple[CertificateAuthority, str, Roa]] = []
    for holder, roa in damaged_roas_raw:
        for name, candidate in holder.issued_roas.items():
            if candidate == roa:
                damaged_roas.append((holder, name, roa))
                break

    method = (
        WhackMethod.OVERWRITE_SHRINK if not damage
        else WhackMethod.MAKE_BEFORE_BREAK
    )
    plan = WhackPlan(
        manipulator=manipulator,
        target=target,
        target_holder=target_holder,
        method=method,
        hole=hole,
        shrink_child=shrink_child,
        damaged_certs=damaged_certs,
        damaged_roas=damaged_roas,
    )

    described_certs = [
        DamagedObject("rc", cert.subject, f"RC {cert.ip_resources}")
        for cert in damaged_certs
    ]
    described_roas = [
        DamagedObject("roa", holder.handle, roa.describe())
        for holder, _n, roa in damaged_roas
    ]
    if method is WhackMethod.MAKE_BEFORE_BREAK:
        if allow_reissue:
            plan.reissued = described_certs + described_roas
        else:
            plan.collateral = described_certs + described_roas
            plan.method = WhackMethod.OVERWRITE_SHRINK
    return plan


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def execute_whack(plan: WhackPlan) -> None:
    """Apply a plan to the CA engines: make (reissue) before break (shrink).

    After execution a relying party refresh will classify the target ROA's
    route per Section 4 — invalid if some covering ROA survives, unknown
    otherwise.
    """
    manipulator = plan.manipulator

    if plan.method is WhackMethod.DELETE_OWN_ROA:
        for name, roa in manipulator.issued_roas.items():
            if roa == plan.target:
                manipulator.delete_object(name)
                return
        raise WhackError("target ROA no longer issued by the manipulator")

    if plan.method is WhackMethod.REVOKE_CHILD_CERT:
        assert plan.shrink_child is not None
        manipulator.revoke_cert(plan.shrink_child.certificate)
        return

    assert plan.hole is not None and plan.shrink_child is not None

    # -- make: republish everything the hole would damage --------------------
    if plan.reissued:
        for holder, _name, roa in plan.damaged_roas:
            prefixes = [
                RoaPrefix(rp.prefix, rp.max_length) for rp in roa.prefixes
            ]
            manipulator.issue_roa(roa.asn, prefixes)
        for cert in plan.damaged_certs:
            # Re-certify the intermediate authority directly under the
            # manipulator, minus the hole, reusing its existing key so its
            # own products keep validating.
            shrunk = cert.ip_resources.subtract(plan.hole)
            replacement = manipulator._issue_rc(  # noqa: SLF001 - rogue issuance
                subject=cert.subject,
                subject_public_key=cert.subject_key,
                ip_resources=shrunk,
                as_resources=cert.as_resources,
                sia=cert.sia,
                validity=365 * 24 * 3600,
            )
            engine = plan.shrink_child.find_descendant(cert.subject)
            if engine is not None:
                engine.certificate = replacement

    # -- break: overwrite the direct child's RC without the hole ---------------
    new_resources = plan.shrink_child.certificate.ip_resources.subtract(plan.hole)
    manipulator.overwrite_child_cert(plan.shrink_child.key_id, new_resources)

    # The old intermediate RCs under the shrunken chain now overclaim and
    # would be rejected anyway; withdraw them so the replacement chain
    # (published by the manipulator) is what relying parties build on.
    for cert in plan.damaged_certs:
        issuer = _find_issuer(plan.shrink_child, cert)
        if issuer is not None:
            issuer.delete_object(cert_file_name(cert))


def _find_issuer(
    root: CertificateAuthority, cert: ResourceCertificate
) -> CertificateAuthority | None:
    """The authority in root's subtree that published *cert*."""
    for name, issued in root.issued_certs.items():
        if name == cert_file_name(cert):
            return root
    for child in root.children():
        found = _find_issuer(child, cert)
        if found is not None:
            return found
    return None
