"""Section 7's granularity observation, quantified.

"We note that these manipulations are more coarse-grained than domain
name seizures, because current BGP practices limit their granularity to a
/24 IPv4 prefix, i.e., 256 IPv4 addresses."

A domain seizure takes one name offline.  Whacking the ROA that protects
one *address* necessarily degrades the routing security of every address
sharing the target's ROA prefixes — and if the manipulator then wants the
target actually unreachable (through a covering ROA + drop-invalid), the
smallest independently routable unit is a /24.  This module computes, for
a target address inside a given VRP set, the *blast radius*: the set of
addresses whose routing security is disturbed along with the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import Afi, Prefix, parse_address
from ..rp import VRP, VrpSet

__all__ = ["MIN_ROUTABLE_V4", "BlastRadius", "whack_blast_radius"]

# "The smallest IPv4 prefix length which is globally routable in BGP is a
# /24" (paper, Section 2).
MIN_ROUTABLE_V4 = 24


@dataclass(frozen=True)
class BlastRadius:
    """Collateral scope of whacking the protection of one target address."""

    target: Prefix                      # the /32 (or /128) being targeted
    whacked_vrps: tuple[VRP, ...]       # every VRP that must die
    disturbed_addresses: int            # addresses losing ROA protection
    minimum_unreachable: int            # addresses in the smallest routable
                                        # unit containing the target

    @property
    def dns_seizure_equivalent(self) -> int:
        """How many "single names" (addresses) a domain seizure of the
        same target would affect: exactly one."""
        return 1

    @property
    def amplification(self) -> int:
        """Disturbed addresses per targeted address."""
        return self.disturbed_addresses

    def describe(self) -> str:
        vrp_text = ", ".join(str(v) for v in self.whacked_vrps) or "none"
        return (
            f"target {self.target}: whack {vrp_text}; "
            f"{self.disturbed_addresses} addresses lose protection; "
            f">= {self.minimum_unreachable} addresses in the smallest "
            "routable unit"
        )


def whack_blast_radius(target_address: str, vrps: VrpSet) -> BlastRadius:
    """Compute the collateral of de-protecting one address.

    Every VRP whose prefix covers the target must be whacked (any one of
    them keeps a covering/matching ROA alive); the disturbed address count
    is the size of the union of their prefixes.  The minimum unreachable
    unit is the routable floor — a /24 for IPv4, a /48 for IPv6 — because
    that is the finest hole a manipulator can usefully punch: the victim
    can re-issue ROAs for all of its remaining (still-certified) space,
    but nothing finer than the floor is globally routable, so at least
    one floor-sized block goes down with the target.
    """
    afi, value = parse_address(target_address)
    target = Prefix(afi, value, afi.bits)

    whacked = tuple(sorted(vrps.covering(target)))
    from ..resources import ResourceSet

    disturbed = ResourceSet.from_prefixes(v.prefix for v in whacked)

    floor_length = MIN_ROUTABLE_V4 if afi is Afi.IPV4 else 48
    minimum_unreachable = 1 << (afi.bits - floor_length)

    return BlastRadius(
        target=target,
        whacked_vrps=whacked,
        disturbed_addresses=disturbed.size,
        minimum_unreachable=minimum_unreachable,
    )
