"""Declarative scenario timelines over the closed RPKI/BGP loop.

Research on the flipped threat model is mostly "what happens if X at time
T?" — this module makes such scenarios declarative.  A
:class:`TimelineRunner` wraps a :class:`ClosedLoopSimulation`; you
schedule world mutations ("whack this ROA at epoch 3", "renew everything
at epoch 5") and watch routes, then run and read the per-epoch chart.

Example::

    runner = TimelineRunner(loop)
    runner.watch("63.174.16.0/20", 17054)
    runner.schedule(2, "whack the /20", lambda: execute_whack(plan))
    report = runner.run(epochs=6)
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..rp import Route, RouteValidity
from .circular import ClosedLoopSimulation

__all__ = ["ScheduledAction", "TimelineEpoch", "TimelineReport", "TimelineRunner"]


@dataclass(frozen=True)
class ScheduledAction:
    epoch: int
    description: str
    action: Callable[[], None]


@dataclass
class TimelineEpoch:
    """One epoch's observations."""

    epoch: int
    actions: list[str]
    vrp_count: int
    route_states: dict[str, RouteValidity]
    unreachable_points: list[str]


@dataclass
class TimelineReport:
    watched: list[str]
    epochs: list[TimelineEpoch] = field(default_factory=list)

    def states_of(self, route_text: str) -> list[RouteValidity]:
        """The watched route's state at every epoch, in order."""
        return [e.route_states[route_text] for e in self.epochs]

    def first_epoch_where(
        self, route_text: str, state: RouteValidity
    ) -> int | None:
        for epoch in self.epochs:
            if epoch.route_states[route_text] is state:
                return epoch.epoch
        return None

    def render(self) -> str:
        """A fixed-width epoch-by-epoch chart."""
        lines = []
        header = f"{'epoch':<7}{'VRPs':>5}  " + "  ".join(
            f"{r:<26}" for r in self.watched
        )
        lines.append(header)
        for epoch in self.epochs:
            row = f"{epoch.epoch:<7}{epoch.vrp_count:>5}  " + "  ".join(
                f"{epoch.route_states[r].value:<26}" for r in self.watched
            )
            lines.append(row)
            for action in epoch.actions:
                lines.append(f"       ! {action}")
            if epoch.unreachable_points:
                lines.append(
                    "       x unreachable: "
                    + ", ".join(epoch.unreachable_points)
                )
        return "\n".join(lines)


class TimelineRunner:
    """Schedules actions against a closed-loop simulation and records."""

    def __init__(self, loop: ClosedLoopSimulation):
        self.loop = loop
        self._actions: list[ScheduledAction] = []
        self._watched: list[tuple[str, int]] = []

    def watch(self, prefix_text: str, origin: int) -> "TimelineRunner":
        """Track a route's validity at every epoch."""
        self._watched.append((prefix_text, origin))
        return self

    def schedule(
        self, epoch: int, description: str, action: Callable[[], None]
    ) -> "TimelineRunner":
        """Run *action* immediately before the given epoch's refresh."""
        if epoch < 0:
            raise ValueError(f"epochs start at 0, got {epoch}")
        self._actions.append(ScheduledAction(epoch, description, action))
        return self

    def run(self, epochs: int) -> TimelineReport:
        """Execute the timeline; returns the full report."""
        watched_text = [
            str(Route.parse(prefix, origin))
            for prefix, origin in self._watched
        ]
        report = TimelineReport(watched=watched_text)
        for epoch in range(epochs):
            fired = []
            for scheduled in self._actions:
                if scheduled.epoch == epoch:
                    scheduled.action()
                    fired.append(scheduled.description)
            loop_report = self.loop.step()
            states = {
                text: self.loop.rp.classify(Route.parse(prefix, origin))
                for text, (prefix, origin) in zip(
                    watched_text, self._watched
                )
            }
            report.epochs.append(TimelineEpoch(
                epoch=epoch,
                actions=fired,
                vrp_count=loop_report.vrp_count,
                route_states=states,
                unreachable_points=list(loop_report.unreachable_points),
            ))
        return report
