"""A deployment advisor: the paper's operational lessons as tooling.

The paper ends by asking for "monitoring and configuration tools [that]
could be used to mitigate these risks" (Section 4).  This module is the
configuration-tool half.  Given what an operator intends to authorize and
what the RPKI and BGP currently look like, it produces a rollout plan
that avoids the self-inflicted side effects:

- **Side Effect 5**: ROAs ordered most-specific-first, and any *currently
  announced* route that would flip to invalid is flagged before a single
  object is signed ("a new ROA for a large prefix should be issued only
  after all ROAs for its subprefixes");
- **Side Effect 6**: intended ROAs that will end up *covered* by another
  ROA are flagged as fragile — if they ever go missing, their routes turn
  invalid, not unknown;
- **Side Effect 7**: repository placements whose own route depends on a
  ROA stored at that same repository are flagged, with the mirror
  recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bgp import Origination
from ..repository import RepositoryRegistry
from ..rp import VRP, Route, RouteValidity, VrpSet, validate
from ..rpki import CertificateAuthority
from .circular import RepositoryDependencyGraph
from .missing import safe_issuance_order

__all__ = ["RolloutWarning", "RolloutPlan", "plan_rollout", "audit_repository_placement"]


@dataclass(frozen=True)
class RolloutWarning:
    """One thing that will break (or become fragile) during the rollout."""

    code: str           # "invalidates-route" | "covered-roa" | "self-hosted"
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.detail}"


@dataclass
class RolloutPlan:
    """An ordered, annotated plan for issuing a set of ROAs."""

    steps: list[VRP] = field(default_factory=list)
    warnings: list[RolloutWarning] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not any(
            w.code == "invalidates-route" for w in self.warnings
        )

    def render(self) -> str:
        lines = ["rollout order (most specific first):"]
        lines += [f"  {index + 1}. issue {vrp}" for index, vrp in
                  enumerate(self.steps)]
        if self.warnings:
            lines.append("warnings:")
            lines += [f"  - {w}" for w in self.warnings]
        else:
            lines.append("no warnings: the rollout is side-effect-free")
        return "\n".join(lines)


def plan_rollout(
    intended: list[VRP],
    *,
    existing: VrpSet | None = None,
    announced_routes: list[Route] = (),
) -> RolloutPlan:
    """Order intended ROAs safely and predict the fallout.

    *announced_routes* is what BGP currently carries (the operator's own
    originations plus anything else they care about keeping reachable).
    """
    existing = existing or VrpSet()
    plan = RolloutPlan(steps=safe_issuance_order(list(intended)))

    # Side Effect 5: simulate the rollout step by step and check every
    # announced route after each issuance.
    state = VrpSet(existing)
    final = VrpSet(list(existing) + plan.steps)
    for vrp in plan.steps:
        state.add(vrp)
        for route in announced_routes:
            before = validate(route.prefix, route.origin, existing).state
            now_state = validate(route.prefix, route.origin, state).state
            end_state = validate(route.prefix, route.origin, final).state
            if (
                before is not RouteValidity.INVALID
                and now_state is RouteValidity.INVALID
                and end_state is RouteValidity.INVALID
            ):
                plan.warnings.append(RolloutWarning(
                    "invalidates-route", str(route),
                    f"becomes invalid once {vrp} is issued; authorize it "
                    "first or confirm it should be filtered",
                ))

    # Side Effect 6: which intended ROAs end up covered by another ROA?
    for vrp in plan.steps:
        covering = [
            other for other in final.covering(vrp.prefix)
            if other != vrp
        ]
        if covering:
            plan.warnings.append(RolloutWarning(
                "covered-roa", str(vrp),
                "if this ROA ever goes missing its route turns INVALID "
                f"(covered by {', '.join(str(c) for c in covering)}); "
                "monitor its renewal closely",
            ))

    # Dedupe repeated route warnings (a route flagged at one step stays
    # flagged; reporting it once is enough).
    seen: set[tuple[str, str]] = set()
    unique: list[RolloutWarning] = []
    for warning in plan.warnings:
        key = (warning.code, warning.subject)
        if key not in seen:
            seen.add(key)
            unique.append(warning)
    plan.warnings = unique
    return plan


def audit_repository_placement(
    registry: RepositoryRegistry,
    authorities: list[CertificateAuthority],
    originations: list[Origination],
) -> list[RolloutWarning]:
    """Side Effect 7 pre-flight: flag self-dependent repository placements."""
    analysis = RepositoryDependencyGraph.build(
        registry, authorities, originations
    )
    warnings = []
    for risk in analysis.cycles():
        if len(risk.cycle) == 1:
            detail = (
                "the ROA validating the route to this repository is stored "
                "at the repository itself"
            )
            if risk.covering_threat:
                detail += (
                    "; a covering ROA exists, so one transient fault makes "
                    "this a PERSISTENT failure under drop-invalid"
                )
            detail += " — publish a mirror outside this prefix"
            warnings.append(RolloutWarning(
                "self-hosted", risk.cycle[0], detail,
            ))
        else:
            warnings.append(RolloutWarning(
                "self-hosted", " -> ".join(risk.cycle),
                "circular repository dependency across multiple points",
            ))
    return warnings
