"""Exceptions raised by the attack-analysis (core) layer."""

from __future__ import annotations


class CoreError(Exception):
    """Base class for core-layer errors."""


class WhackError(CoreError):
    """A whacking plan could not be constructed or executed."""


class ScenarioError(CoreError):
    """An experiment scenario was inconsistently specified."""
