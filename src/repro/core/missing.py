"""Side Effects 5 and 6: what new or missing ROAs do to route validity.

Side Effect 5 — *a new ROA can cause many routes to become invalid*: a
ROA for a large prefix, issued before its subprefixes' ROAs, flips all
their previously "unknown" routes to "invalid".  The deployment-order
analysis here quantifies that, and :func:`safe_issuance_order` computes
the order the paper prescribes ("a new ROA for a large prefix should be
issued only after all ROAs for its subprefixes").

Side Effect 6 — *a missing ROA can cause a route to become invalid*:
whether an absent ROA downgrades its route to "unknown" (harmless-ish) or
"invalid" (unreachable under drop-invalid) depends on whether a covering
ROA survives.  :func:`missing_roa_impact` answers that per ROA, which is
also the whack planner's measure of how much damage a whack actually does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rp import VRP, Route, RouteValidity, VrpSet, validate

__all__ = [
    "RoaRemovalImpact",
    "missing_roa_impact",
    "new_roa_impact",
    "safe_issuance_order",
]


@dataclass(frozen=True)
class RoaRemovalImpact:
    """What happens to a VRP's own routes when the VRP goes missing."""

    vrp: VRP
    resulting_state: RouteValidity
    covering_survivors: tuple[VRP, ...]

    @property
    def becomes_invalid(self) -> bool:
        """The dangerous case: invalid, not merely unknown (SE 6)."""
        return self.resulting_state is RouteValidity.INVALID


def _without(vrps: VrpSet, removed: VRP) -> VrpSet:
    return VrpSet(v for v in vrps if v != removed)


def missing_roa_impact(vrps: VrpSet, removed: VRP) -> RoaRemovalImpact:
    """Classify the removed VRP's route against the surviving set.

    The probe route is (vrp.prefix, vrp.asn) — the route the ROA existed
    to authorize.
    """
    survivors = _without(vrps, removed)
    route = Route(removed.prefix, removed.asn)
    state = validate(route.prefix, route.origin, survivors).state
    covering = tuple(survivors.covering(removed.prefix))
    return RoaRemovalImpact(
        vrp=removed, resulting_state=state, covering_survivors=covering
    )


@dataclass(frozen=True)
class NewRoaImpact:
    """Side Effect 5 accounting for one newly issued VRP."""

    vrp: VRP
    newly_invalid_prefixes: int   # routes flipped unknown -> invalid
    probe_count: int


def new_roa_impact(
    vrps: VrpSet,
    new: VRP,
    *,
    probe_length: int = 24,
) -> NewRoaImpact:
    """Count routes under the new ROA's prefix flipped unknown → invalid.

    Probes every /*probe_length* subprefix with an origin that holds no
    ROAs (the generic "someone else announces it" case) — before and
    after adding *new*.
    """
    from .validity import OTHER_ORIGIN

    probe_length = max(probe_length, new.prefix.length)
    after = VrpSet(list(vrps) + [new])
    flipped = 0
    probes = 0
    for prefix in new.prefix.subprefixes(probe_length):
        probes += 1
        route = Route(prefix, OTHER_ORIGIN)
        was = validate(route.prefix, route.origin, vrps).state
        now = validate(route.prefix, route.origin, after).state
        if was is RouteValidity.UNKNOWN and now is RouteValidity.INVALID:
            flipped += 1
    return NewRoaImpact(vrp=new, newly_invalid_prefixes=flipped,
                        probe_count=probes)


def safe_issuance_order(vrps: list[VRP]) -> list[VRP]:
    """Order ROAs so that no issuance invalidates a later ROA's routes.

    The paper's rule: "a new ROA for a large prefix should be issued only
    after all ROAs for its subprefixes."  Sorting by descending prefix
    length (most specific first) achieves exactly that; ties broken by
    address for determinism.
    """
    return sorted(
        vrps,
        key=lambda v: (-v.prefix.length, v.prefix, int(v.asn)),
    )
