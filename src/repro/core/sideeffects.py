"""The paper's seven side effects, each as a one-call demonstration.

Every ``demonstrate_side_effect_N`` builds a fresh Figure 2 world, drives
the scenario the paper describes, and returns a :class:`SideEffectReport`
whose ``claims`` are checked facts (each one is asserted during the run —
a report is only returned if the side effect actually manifested).  The
CLI's ``sideeffects`` command prints the whole catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..repository import FaultInjector, FaultKind, Fetcher
from ..rp import RelyingParty, RouteValidity
from .errors import ScenarioError

__all__ = ["SideEffectReport", "demonstrate", "demonstrate_all", "SIDE_EFFECTS"]


@dataclass
class SideEffectReport:
    number: int
    title: str
    claims: list[str] = field(default_factory=list)

    def check(self, condition: bool, claim: str) -> None:
        """Record a claim, insisting that it actually held."""
        if not condition:
            raise ScenarioError(
                f"side effect {self.number} failed to manifest: {claim}"
            )
        self.claims.append(claim)

    def render(self) -> str:
        lines = [f"Side Effect {self.number}: {self.title}"]
        lines += [f"  - {claim}" for claim in self.claims]
        return "\n".join(lines)


def _fresh_world():
    from ..modelgen import build_figure2

    return build_figure2()


def _rp_for(world, **kwargs):
    rp = RelyingParty(
        world.trust_anchors,
        Fetcher(world.registry, world.clock, faults=kwargs.pop("faults", None)),
        world.clock,
        **kwargs,
    )
    rp.refresh()
    return rp


def demonstrate_side_effect_1() -> SideEffectReport:
    """Unilateral reclamation of IP address allocations, with little recourse."""
    from .reclaim import reclaim_space

    report = SideEffectReport(1, "unilateral reclamation, little recourse")
    world = _fresh_world()
    outcome = reclaim_space(world.sprint, world.continental,
                            roots=[world.arin])
    report.check(
        str(outcome.reclaimed) == "{63.174.16.0/20}",
        "Sprint reclaimed Continental Broadband's entire /20 by revoking "
        "one certificate",
    )
    report.check(
        len(outcome.whacked_roas) == 5,
        "all five of the tenant's ROAs were whacked in the process",
    )
    report.check(
        outcome.recourse == ["ARIN", "Sprint"],
        "only the ancestor chain (ARIN, Sprint) can reissue the space — "
        "no web-PKI-style third party exists",
    )
    return report


def demonstrate_side_effect_2() -> SideEffectReport:
    """Stealthy revocation of a child's object."""
    from ..monitor import analyze, diff_snapshots, take_snapshot

    report = SideEffectReport(2, "stealthy revocation of a child's object")
    world = _fresh_world()
    before = take_snapshot(world.registry, world.clock.now)
    world.continental.delete_object(world.target22_name)
    after = take_snapshot(world.registry, world.clock.now)
    rp = _rp_for(world)
    report.check(
        len(rp.vrps) == 7 and not rp.last_run.errors(),
        "the ROA vanished and validation still looks perfectly clean",
    )
    alerts = analyze(diff_snapshots(before, after), before, after)
    report.check(
        any(a.kind.value == "stealthy-deletion" for a in alerts),
        "only a diff-based monitor notices: no CRL entry was ever written",
    )
    return report


def demonstrate_side_effect_3() -> SideEffectReport:
    """Targeted whacking of a grandchild ROA."""
    from .whack import WhackMethod, execute_whack, plan_whack

    report = SideEffectReport(3, "targeted whacking of a grandchild")
    world = _fresh_world()
    plan = plan_whack(world.sprint, world.target20, world.continental)
    report.check(
        plan.method is WhackMethod.OVERWRITE_SHRINK,
        "Sprint can whack its grandchild ROA by shrinking Continental's RC",
    )
    report.check(plan.collateral_count == 0,
                 "the hole overlaps no other object: zero collateral damage")
    execute_whack(plan)
    rp = _rp_for(world)
    report.check(
        rp.classify_parts("63.174.16.0/20", 17054) is not RouteValidity.VALID
        and len(rp.vrps) == 7,
        "after execution only the target ROA is gone",
    )
    return report


def demonstrate_side_effect_4() -> SideEffectReport:
    """Whacking of great-grandchildren and beyond."""
    from .whack import WhackMethod, plan_whack

    report = SideEffectReport(4, "whacking great-grandchildren and beyond")
    world = _fresh_world()
    grandparent_plan = plan_whack(world.sprint, world.target20,
                                  world.continental)
    great_plan = plan_whack(world.arin, world.target20, world.continental)
    report.check(
        great_plan.shrink_child is world.sprint,
        "ARIN reaches the target by overwriting its own child (Sprint)",
    )
    report.check(
        great_plan.suspicious_reissue_count
        > grandparent_plan.suspicious_reissue_count,
        "deeper whacking requires more suspiciously-reissued objects "
        f"({great_plan.suspicious_reissue_count} vs "
        f"{grandparent_plan.suspicious_reissue_count}) — easier to detect",
    )
    return report


def demonstrate_side_effect_5() -> SideEffectReport:
    """A new ROA can cause many routes to become invalid."""
    from ..rp import VRP, VrpSet
    from .missing import new_roa_impact
    from .whack import subtree_roas

    report = SideEffectReport(5, "a new ROA invalidates previously unknown routes")
    world = _fresh_world()
    vrps = VrpSet(
        VRP(rp_entry.prefix, rp_entry.effective_max_length, roa.asn)
        for _h, _n, roa in subtree_roas(world.arin)
        for rp_entry in roa.prefixes
    )
    impact = new_roa_impact(
        vrps, VRP.parse("63.160.0.0/12-13", 1239), probe_length=16
    )
    report.check(
        impact.newly_invalid_prefixes >= 12,
        f"issuing (63.160.0.0/12-13, AS 1239) flips "
        f"{impact.newly_invalid_prefixes} of {impact.probe_count} probed /16 "
        "routes from unknown to invalid",
    )
    return report


def demonstrate_side_effect_6() -> SideEffectReport:
    """A missing ROA can cause a route to become invalid."""
    report = SideEffectReport(6, "a missing ROA makes a route invalid")
    world = _fresh_world()
    faults = FaultInjector(seed=1)
    faults.schedule(
        FaultKind.DROP, "rsync://continental.example/repo/",
        file_name=world.target22_name,
    )
    rp = _rp_for(world, faults=faults)
    report.check(
        rp.classify_parts("63.174.16.0/22", 7341) is RouteValidity.INVALID,
        "one dropped fetch and the /22 route is INVALID — not unknown — "
        "because the /20 ROA covers it",
    )
    report.check(
        rp.last_run.has_issue("manifest-file-missing"),
        "the manifest is the only thing that even noticed the file missing",
    )
    return report


def demonstrate_side_effect_7() -> SideEffectReport:
    """Transient faults cause long-term failures."""
    from ..bgp import LocalPolicy
    from ..modelgen import figure2_bgp
    from .circular import ClosedLoopSimulation

    report = SideEffectReport(7, "transient faults become persistent failures")
    world = _fresh_world()
    world.sprint.issue_roa(1239, "63.160.0.0/12-13")
    graph, originations, rp_asn = figure2_bgp()
    faults = FaultInjector(seed=7)
    loop = ClosedLoopSimulation(
        registry=world.registry, authorities=[world.arin],
        graph=graph, originations=originations, rp_asn=rp_asn,
        policy=LocalPolicy.DROP_INVALID, clock=world.clock, faults=faults,
    )
    loop.step()
    faults.schedule(
        FaultKind.CORRUPT, "rsync://continental.example/repo/",
        file_name=world.target20_name,
    )
    loop.run(4)
    report.check(
        not loop.can_reach("63.174.23.0", 17054),
        "one corrupted fetch of the self-hosted ROA, and the repository is "
        "unreachable three epochs after the fault cleared",
    )
    report.check(
        loop.epochs[-1].unreachable_points == [
            "rsync://continental.example/repo/"
        ],
        "the relying party keeps trying and keeps failing: the missing ROA "
        "is stored behind the route it would validate",
    )
    return report


SIDE_EFFECTS = {
    1: demonstrate_side_effect_1,
    2: demonstrate_side_effect_2,
    3: demonstrate_side_effect_3,
    4: demonstrate_side_effect_4,
    5: demonstrate_side_effect_5,
    6: demonstrate_side_effect_6,
    7: demonstrate_side_effect_7,
}


def demonstrate(number: int) -> SideEffectReport:
    """Run one side effect's demonstration."""
    try:
        runner = SIDE_EFFECTS[number]
    except KeyError:
        raise ScenarioError(f"the paper has side effects 1-7, not {number}")
    return runner()


def demonstrate_all() -> list[SideEffectReport]:
    """Run the whole catalog, in order."""
    return [SIDE_EFFECTS[n]() for n in sorted(SIDE_EFFECTS)]
