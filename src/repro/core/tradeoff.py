"""Table 6: the relying-party policy tradeoff, as an executable experiment.

"The local policy that is best at protecting against problems with BGP is
worst at protecting against problems with RPKI" (paper, Section 5).  The
experiment crosses the two threats with the two policies:

===============  ==========================  ==========================
policy           prefix reachable during      prefix reachable during
                 routing attack               RPKI manipulation
===============  ==========================  ==========================
drop invalid     YES                          NO
depref invalid   subprefix hijacks possible   YES
===============  ==========================  ==========================

:func:`run_tradeoff` reproduces the table on any topology: it measures,
across all non-attacker ASes, the fraction that still reach the victim's
addresses (a) under a subprefix hijack and (b) after the victim's ROA is
whacked while a covering ROA survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bgp import (
    AsGraph,
    LocalPolicy,
    Origination,
    policy_table,
    propagate,
    reachable,
    subprefix_hijack,
)
from ..resources import ASN, Prefix
from ..rp import VRP, Route, VrpSet, validate

__all__ = ["TradeoffScenario", "TradeoffCell", "TradeoffTable", "run_tradeoff"]


@dataclass(frozen=True)
class TradeoffScenario:
    """The pieces the 2x2 experiment needs."""

    graph: AsGraph
    victim_prefix: Prefix
    victim: ASN
    attacker: ASN
    covering_vrp: VRP     # survives the whack; what makes the route INVALID
    victim_vrp: VRP       # the victim's own ROA (whacked in case B)

    @classmethod
    def build(
        cls,
        graph: AsGraph,
        victim_prefix: str,
        victim: int,
        attacker: int,
        *,
        covering_prefix: str,
        covering_origin: int,
    ) -> "TradeoffScenario":
        prefix = Prefix.parse(victim_prefix)
        return cls(
            graph=graph,
            victim_prefix=prefix,
            victim=ASN(victim),
            attacker=ASN(attacker),
            covering_vrp=VRP.parse(covering_prefix, covering_origin),
            victim_vrp=VRP.parse(victim_prefix, victim),
        )


@dataclass(frozen=True)
class TradeoffCell:
    """One cell of Table 6: reachability under one (policy, threat) pair."""

    policy: LocalPolicy
    threat: str                 # "routing-attack" | "rpki-manipulation"
    reachable_fraction: float   # over all non-attacker, non-victim ASes
    hijacked_fraction: float    # delivered to the attacker instead

    @property
    def prefix_reachable(self) -> bool:
        """The table's boolean verdict (everyone still reaches the victim)."""
        return self.reachable_fraction == 1.0


@dataclass
class TradeoffTable:
    cells: dict[tuple[LocalPolicy, str], TradeoffCell]

    def cell(self, policy: LocalPolicy, threat: str) -> TradeoffCell:
        return self.cells[(policy, threat)]

    def render(self) -> str:
        """The paper's Table 6, with measured fractions alongside."""
        lines = [
            f"{'relying-party policy':<16}  {'routing attack':>22}  "
            f"{'RPKI manipulation':>22}"
        ]
        for policy in (LocalPolicy.DROP_INVALID, LocalPolicy.DEPREF_INVALID):
            row = [f"{policy.value:<16}"]
            for threat in ("routing-attack", "rpki-manipulation"):
                cell = self.cells[(policy, threat)]
                if cell.prefix_reachable:
                    text = "reachable"
                elif threat == "routing-attack" and cell.hijacked_fraction > 0:
                    text = f"hijacked {cell.hijacked_fraction:.0%}"
                else:
                    text = f"reachable {cell.reachable_fraction:.0%}"
                row.append(f"{text:>22}")
            lines.append("  ".join(row))
        return "\n".join(lines)


def _measure(
    scenario: TradeoffScenario,
    policy: LocalPolicy,
    vrps: VrpSet,
    originations: list[Origination],
    probe_address: str,
) -> tuple[float, float]:
    """(reachable fraction, hijacked fraction) across observer ASes."""
    validity = lambda route: validate(  # noqa: E731
        route.prefix, route.origin, vrps).state
    policies = policy_table(list(scenario.graph.ases()), policy, validity)
    outcome = propagate(scenario.graph, originations, policies)

    observers = [
        asn for asn in scenario.graph.ases()
        if asn not in (scenario.victim, scenario.attacker)
    ]
    reached = 0
    hijacked = 0
    from ..bgp import forward

    for observer in observers:
        if reachable(outcome, observer, probe_address, scenario.victim):
            reached += 1
        elif forward(outcome, observer, probe_address).delivered_to == (
            scenario.attacker
        ):
            hijacked += 1
    total = len(observers)
    return reached / total, hijacked / total


def run_tradeoff(scenario: TradeoffScenario) -> TradeoffTable:
    """Fill the 2x2 table for the scenario."""
    # Probe an address in the half the subprefix hijacker steals.
    attack = subprefix_hijack(
        scenario.victim_prefix, scenario.victim, scenario.attacker
    )
    probe_prefix = attack.attack.prefix
    from ..resources import format_address

    probe_address = format_address(
        probe_prefix.afi, probe_prefix.network | 1
    )

    cells: dict[tuple[LocalPolicy, str], TradeoffCell] = {}
    for policy in (LocalPolicy.DROP_INVALID, LocalPolicy.DEPREF_INVALID):
        # Threat A: BGP under attack, RPKI intact (victim's ROA present).
        vrps_intact = VrpSet([scenario.covering_vrp, scenario.victim_vrp])
        reached, hijacked = _measure(
            scenario, policy, vrps_intact, attack.originations, probe_address
        )
        cells[(policy, "routing-attack")] = TradeoffCell(
            policy, "routing-attack", reached, hijacked
        )

        # Threat B: RPKI manipulated — the victim's ROA is whacked, the
        # covering ROA survives, no BGP attacker.
        vrps_whacked = VrpSet([scenario.covering_vrp])
        assert validate(
            scenario.victim_prefix, scenario.victim, vrps_whacked
        ).state.value == "invalid", "scenario must make the victim's route invalid"
        reached, hijacked = _measure(
            scenario,
            policy,
            vrps_whacked,
            [Origination(scenario.victim_prefix, scenario.victim)],
            probe_address,
        )
        cells[(policy, "rpki-manipulation")] = TradeoffCell(
            policy, "rpki-manipulation", reached, hijacked
        )
    return TradeoffTable(cells=cells)
