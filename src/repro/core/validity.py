"""Route-validity matrices: the computation behind Figure 5.

Figure 5 shows "route validity status for 63.160.0.0/12 and its
subprefixes, inferred from the RPKI of Figure 2" — a map from every
(subprefix, origin) pair to valid/unknown/invalid, before and after a new
ROA is added.  :func:`validity_matrix` computes exactly that; the diff
helpers quantify the side effects the two panels illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..resources import ASN, Prefix
from ..rp import Route, RouteValidity, VrpSet, validate

__all__ = [
    "MatrixCell",
    "ValidityMatrix",
    "validity_matrix",
    "matrix_diff",
    "OTHER_ORIGIN",
]

# A column for "any AS without ROAs of its own" — Figure 5's implicit
# 'everyone else' case.  AS 64511 is documentation/reserved space.
OTHER_ORIGIN = ASN(64511)


@dataclass(frozen=True)
class MatrixCell:
    prefix: Prefix
    origin: ASN
    state: RouteValidity


@dataclass
class ValidityMatrix:
    """Validity of every (subprefix, origin) pair under one VRP set."""

    base: Prefix
    lengths: tuple[int, ...]
    origins: tuple[ASN, ...]
    cells: dict[tuple[Prefix, ASN], RouteValidity]

    def state(self, prefix: Prefix | str, origin: ASN | int) -> RouteValidity:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return self.cells[(prefix, ASN(int(origin)))]

    def rows(self) -> list[tuple[Prefix, dict[ASN, RouteValidity]]]:
        """Per-prefix rows, in address order, for rendering."""
        prefixes = sorted({p for p, _ in self.cells})
        return [
            (prefix, {o: self.cells[(prefix, o)] for o in self.origins})
            for prefix in prefixes
        ]

    def count(self, state: RouteValidity) -> int:
        return sum(1 for s in self.cells.values() if s is state)

    def render(self) -> str:
        """A fixed-width text table (the benchmark's printable artifact)."""
        header_cells = ["prefix".ljust(20)] + [
            (str(o) if o != OTHER_ORIGIN else "other").rjust(9)
            for o in self.origins
        ]
        lines = ["  ".join(header_cells)]
        for prefix, states in self.rows():
            row = [str(prefix).ljust(20)] + [
                states[o].value.rjust(9) for o in self.origins
            ]
            lines.append("  ".join(row))
        return "\n".join(lines)


def validity_matrix(
    vrps: VrpSet,
    base: Prefix | str,
    *,
    lengths: Iterable[int] | None = None,
    origins: Iterable[ASN | int] = (),
    include_other: bool = True,
) -> ValidityMatrix:
    """Classify *base* and all its subprefixes for each origin of interest.

    *lengths* defaults to every length from the base's own down to /24 —
    "the smallest IPv4 prefix length which is globally routable in BGP"
    (paper, Section 2), which is why the figure stops there.
    """
    if isinstance(base, str):
        base = Prefix.parse(base)
    if lengths is None:
        lengths = range(base.length, min(24, base.afi.bits) + 1)
    lengths = tuple(lengths)

    origin_list = [ASN(int(o)) for o in origins]
    if include_other:
        origin_list.append(OTHER_ORIGIN)

    cells: dict[tuple[Prefix, ASN], RouteValidity] = {}
    for length in lengths:
        for prefix in base.subprefixes(length):
            for origin in origin_list:
                cells[(prefix, origin)] = validate(prefix, origin, vrps).state
    return ValidityMatrix(
        base=base,
        lengths=lengths,
        origins=tuple(origin_list),
        cells=cells,
    )


@dataclass(frozen=True)
class MatrixFlip:
    """One (prefix, origin) whose state changed between two matrices."""

    prefix: Prefix
    origin: ASN
    before: RouteValidity
    after: RouteValidity

    def __str__(self) -> str:
        return f"({self.prefix}, {self.origin}): {self.before.value} -> {self.after.value}"


def matrix_diff(before: ValidityMatrix, after: ValidityMatrix) -> list[MatrixFlip]:
    """All cells whose state changed (the Figure 5 left-vs-right delta)."""
    if set(before.cells) != set(after.cells):
        raise ValueError("matrices cover different (prefix, origin) cells")
    return [
        MatrixFlip(prefix, origin, before.cells[key], after.cells[key])
        for key in sorted(before.cells)
        for prefix, origin in [key]
        if before.cells[key] is not after.cells[key]
    ]
