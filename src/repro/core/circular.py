"""Section 6: the RPKI ⇒ BGP ⇒ RPKI loop, closed.

Two tools:

1. :class:`RepositoryDependencyGraph` — the *static* analysis.  RPKI
   delivery runs over TCP/IP (rsync), so reaching a repository requires a
   usable route to it; under drop-invalid, that route needs its matching
   ROA; that ROA lives in some repository.  The graph has an edge from
   publication point A to publication point B when fetching A requires a
   ROA stored at B.  A cycle through a point that also satisfies the
   paper's condition (b) — some *covering but not matching* ROA exists for
   the repository's route — is a persistent-failure trap: one bad fetch
   and the point can never be re-fetched.

2. :class:`ClosedLoopSimulation` — the *dynamic* reproduction of Side
   Effect 7.  Epoch by epoch: the relying party refreshes its cache using
   the reachability the *previous* epoch's VRPs produced, then routing is
   recomputed from the new VRPs.  Injecting one corrupted fetch of the
   self-hosted ROA shows the transient fault becoming permanent under
   drop-invalid, and healing under depref-invalid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..bgp import (
    AsGraph,
    LocalPolicy,
    Origination,
    RoutingOutcome,
    forward,
    policy_table,
    propagate,
)
from ..repository import Fetcher, FaultInjector, HostLocator, RepositoryRegistry
from ..resources import ASN, format_address
from ..rp import RelyingParty, Route, RouteValidity, VrpSet, validate
from ..rpki import CertificateAuthority
from ..simtime import Clock
from .whack import subtree_roas

__all__ = [
    "DependencyEdge",
    "CircularRisk",
    "RepositoryDependencyGraph",
    "EpochReport",
    "ClosedLoopSimulation",
]


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DependencyEdge:
    """Fetching *dependent* needs a ROA published at *dependency*."""

    dependent: str    # publication point URI
    dependency: str   # publication point URI holding the needed ROA
    roa: str          # the ROA, in paper notation
    route: str        # the repository route the ROA validates


@dataclass(frozen=True)
class CircularRisk:
    """One publication point caught in a dependency cycle."""

    cycle: tuple[str, ...]          # point URIs forming the cycle
    covering_threat: bool           # paper condition (b) holds somewhere

    @property
    def is_persistent_failure_trap(self) -> bool:
        """Conditions (a)+(b): a transient fault here never heals under
        drop-invalid (condition (c) is the relying party's choice)."""
        return self.covering_threat


class RepositoryDependencyGraph:
    """The ROA-to-repository dependency structure of one RPKI world."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.edges: list[DependencyEdge] = []

    @classmethod
    def build(
        cls,
        registry: RepositoryRegistry,
        authorities: list[CertificateAuthority],
        originations: list[Origination],
    ) -> "RepositoryDependencyGraph":
        """Derive the dependency graph.

        *originations* must include the BGP announcements of the prefixes
        the repository servers live in, so each server's route — and the
        ROA that route needs — is well-defined.
        """
        analysis = cls()

        # Which publication point does each ROA live at?  (Its issuer's.)
        roa_home: dict[str, list] = {}
        all_vrps = []
        for root in authorities:
            for holder, _name, roa in subtree_roas(root):
                uri = _point_uri(holder)
                for rp_entry in roa.prefixes:
                    from ..rp import VRP

                    vrp = VRP(
                        prefix=rp_entry.prefix,
                        max_length=rp_entry.effective_max_length,
                        asn=roa.asn,
                    )
                    all_vrps.append(vrp)
                    roa_home.setdefault(str(vrp), []).append(uri)
        vrp_set = VrpSet(all_vrps)

        # Each server: what route covers it, and which ROAs matter?
        for server in registry.servers():
            locator = server.locator
            route = _server_route(locator, originations)
            if route is None:
                continue  # repository outside the modeled address space
            for point in server.points():
                point_uri = str(point.uri)
                analysis.graph.add_node(point_uri)
                covering = list(vrp_set.covering(route.prefix))
                for vrp in covering:
                    if not vrp.matches(route.prefix, route.origin):
                        continue
                    for home in roa_home.get(str(vrp), []):
                        edge = DependencyEdge(
                            dependent=point_uri,
                            dependency=home,
                            roa=str(vrp),
                            route=str(route),
                        )
                        analysis.edges.append(edge)
                        analysis.graph.add_edge(
                            point_uri, home, roa=str(vrp), route=str(route)
                        )
                # Condition (b): covering-but-not-matching ROAs exist.
                threat = any(
                    not v.matches(route.prefix, route.origin) for v in covering
                )
                analysis.graph.nodes[point_uri]["covering_threat"] = threat
        return analysis

    def cycles(self) -> list[CircularRisk]:
        """All dependency cycles (including self-loops — condition (a))."""
        risks = []
        for cycle in nx.simple_cycles(self.graph):
            threat = any(
                self.graph.nodes[node].get("covering_threat", False)
                for node in cycle
            )
            risks.append(CircularRisk(cycle=tuple(cycle), covering_threat=threat))
        return risks

    def self_hosted_points(self) -> list[str]:
        """Points whose own route's ROA is stored at themselves."""
        return [
            risk.cycle[0] for risk in self.cycles() if len(risk.cycle) == 1
        ]


def _point_uri(authority: CertificateAuthority) -> str:
    from ..repository.uri import RsyncUri

    return str(RsyncUri.parse(authority.sia))


def _server_route(
    locator: HostLocator, originations: list[Origination]
) -> Route | None:
    """The most specific announced route covering the server's address."""
    best: Origination | None = None
    for origination in originations:
        if origination.prefix.covers(locator.host_prefix):
            if best is None or origination.prefix.length > best.prefix.length:
                best = origination
    if best is None:
        return None
    return Route(best.prefix, best.origin)


# ---------------------------------------------------------------------------
# dynamic simulation
# ---------------------------------------------------------------------------


@dataclass
class EpochReport:
    """One epoch of the closed loop."""

    epoch: int
    vrp_count: int
    unreachable_points: list[str] = field(default_factory=list)
    invalid_routes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"epoch {self.epoch}: {self.vrp_count} VRPs, "
            f"{len(self.unreachable_points)} unreachable point(s)"
        )


class ClosedLoopSimulation:
    """RPKI -> route validity -> BGP -> RPKI delivery, iterated.

    Parameters
    ----------
    registry, authorities:
        The RPKI world (publication points and their contents).
    graph, originations:
        The BGP world (topology and who announces what, including the
        prefixes repository servers live in).
    rp_asn:
        Where the relying party sits.
    policy:
        The relying party's local policy — the (c) in the paper's three
        conditions.
    clock:
        Simulated time, advanced one hour per epoch.
    faults:
        Fault injector for the transient error.
    """

    EPOCH_SECONDS = 3600

    def __init__(
        self,
        *,
        registry: RepositoryRegistry,
        authorities: list[CertificateAuthority],
        graph: AsGraph,
        originations: list[Origination],
        rp_asn: int,
        policy: LocalPolicy = LocalPolicy.DROP_INVALID,
        clock: Clock,
        faults: FaultInjector | None = None,
    ):
        self.registry = registry
        self.authorities = authorities
        self.graph = graph
        self.originations = originations
        self.rp_asn = ASN(rp_asn)
        self.policy = policy
        self.clock = clock
        self.faults = faults

        self._outcome: RoutingOutcome | None = None
        self.fetcher = Fetcher(
            registry, clock, reachability=self._reachable, faults=faults
        )
        trust_anchors = [
            root.certificate for root in authorities if root.parent is None
        ]
        self.rp = RelyingParty(trust_anchors, self.fetcher, clock)
        self.epochs: list[EpochReport] = []

    # -- the loop's two half-steps -------------------------------------------

    def _reachable(self, locator: HostLocator) -> bool:
        """Data-plane reachability from the RP's AS, per *current* routing."""
        if self._outcome is None:
            return True  # cold start: before any validation, nothing filtered
        address = format_address(locator.afi, locator.address)
        delivery = forward(self._outcome, self.rp_asn, address)
        return delivery.delivered_to == locator.origin_asn

    def _recompute_routing(self) -> None:
        vrps = self.rp.vrps
        validity = lambda route: validate(  # noqa: E731
            route.prefix, route.origin, vrps).state
        policies = policy_table(
            list(self.graph.ases()), self.policy, validity
        )
        self._outcome = propagate(self.graph, self.originations, policies)

    # -- public surface -----------------------------------------------------------

    def step(self) -> EpochReport:
        """One epoch: fetch+validate under current routing, then re-route."""
        epoch = len(self.epochs)
        if epoch:
            self.clock.advance(self.EPOCH_SECONDS)
        report_data = self.rp.refresh()
        self._recompute_routing()

        unreachable = sorted({
            fetch.uri
            for fetch in report_data.fetches
            if not fetch.ok
        })
        invalid = [
            str(o)
            for o in self.originations
            if self.rp.classify(Route(o.prefix, o.origin))
            is RouteValidity.INVALID
        ]
        report = EpochReport(
            epoch=epoch,
            vrp_count=len(self.rp.vrps),
            unreachable_points=unreachable,
            invalid_routes=invalid,
        )
        self.epochs.append(report)
        return report

    def run(self, epochs: int) -> list[EpochReport]:
        return [self.step() for _ in range(epochs)]

    def route_is_valid(self, prefix_text: str, origin: int) -> bool:
        return self.rp.classify_parts(prefix_text, origin) is RouteValidity.VALID

    def can_reach(self, host: str, origin: int) -> bool:
        """Can the RP's AS currently deliver packets to (host, origin)?"""
        assert self._outcome is not None, "run at least one epoch first"
        delivery = forward(self._outcome, self.rp_asn, host)
        return delivery.delivered_to == ASN(origin)
