"""The paper's contribution: attacks and side-effect analyses.

- :mod:`repro.core.whack` — the ROA-whacking taxonomy (Side Effects 1-4)
- :mod:`repro.core.validity` — Figure 5 route-validity matrices
- :mod:`repro.core.missing` — Side Effects 5-6 (new/missing-ROA impact)
- :mod:`repro.core.reclaim` — Side Effect 1 (unilateral reclamation)
- :mod:`repro.core.tradeoff` — Table 6 (local-policy tradeoff)
- :mod:`repro.core.circular` — Section 6 / Side Effect 7 (the closed loop)
"""

from .advisor import (
    RolloutPlan,
    RolloutWarning,
    audit_repository_placement,
    plan_rollout,
)
from .circular import (
    CircularRisk,
    ClosedLoopSimulation,
    DependencyEdge,
    EpochReport,
    RepositoryDependencyGraph,
)
from .errors import CoreError, ScenarioError, WhackError
from .granularity import MIN_ROUTABLE_V4, BlastRadius, whack_blast_radius
from .missing import (
    RoaRemovalImpact,
    missing_roa_impact,
    new_roa_impact,
    safe_issuance_order,
)
from .reclaim import ReclamationReport, reclaim_space, reissuance_candidates
from .sideeffects import (
    SIDE_EFFECTS,
    SideEffectReport,
    demonstrate,
    demonstrate_all,
)
from .timeline import (
    ScheduledAction,
    TimelineEpoch,
    TimelineReport,
    TimelineRunner,
)
from .tradeoff import TradeoffCell, TradeoffScenario, TradeoffTable, run_tradeoff
from .validity import (
    OTHER_ORIGIN,
    MatrixCell,
    ValidityMatrix,
    matrix_diff,
    validity_matrix,
)
from .whack import (
    DamagedObject,
    WhackMethod,
    WhackPlan,
    collateral_of_revocation,
    execute_whack,
    find_hole,
    plan_whack,
    subtree_roas,
)

__all__ = [
    "CircularRisk",
    "RolloutPlan",
    "RolloutWarning",
    "audit_repository_placement",
    "plan_rollout",
    "BlastRadius",
    "ClosedLoopSimulation",
    "CoreError",
    "MIN_ROUTABLE_V4",
    "whack_blast_radius",
    "DamagedObject",
    "DependencyEdge",
    "EpochReport",
    "MatrixCell",
    "OTHER_ORIGIN",
    "ReclamationReport",
    "SIDE_EFFECTS",
    "SideEffectReport",
    "demonstrate",
    "demonstrate_all",
    "RepositoryDependencyGraph",
    "RoaRemovalImpact",
    "ScenarioError",
    "ScheduledAction",
    "TimelineEpoch",
    "TimelineReport",
    "TimelineRunner",
    "TradeoffCell",
    "TradeoffScenario",
    "TradeoffTable",
    "ValidityMatrix",
    "WhackError",
    "WhackMethod",
    "WhackPlan",
    "collateral_of_revocation",
    "execute_whack",
    "find_hole",
    "matrix_diff",
    "missing_roa_impact",
    "new_roa_impact",
    "plan_whack",
    "reclaim_space",
    "reissuance_candidates",
    "run_tradeoff",
    "safe_issuance_order",
    "subtree_roas",
    "validity_matrix",
]
