"""Side Effect 1: unilateral reclamation of IP address space.

"RPKI design gives a landlord unilateral power to evict a tenant...  The
RPKI's hierarchical nature also means that the holder of the reclaimed
space has little recourse available, since its space may only be reissued
by authorities holding supersets of the reclaimed space" (paper,
Section 3).

:func:`reclaim_space` performs the eviction through the CA engine (it is
just revocation plus reallocation — that is the point: no new mechanism is
needed), and :func:`reissuance_candidates` computes the victim's recourse
set: exactly the ancestors on the allocation chain, in stark contrast with
the web PKI where any CA could re-certify anyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import Prefix, ResourceSet
from ..rpki import CertificateAuthority
from .errors import ScenarioError
from .whack import DamagedObject, collateral_of_revocation, subtree_roas

__all__ = ["ReclamationReport", "reclaim_space", "reissuance_candidates"]


@dataclass
class ReclamationReport:
    """The accounting of one unilateral reclamation."""

    landlord: str
    tenant: str
    reclaimed: ResourceSet
    whacked_roas: list[DamagedObject]
    recourse: list[str]   # handles of authorities that could reissue

    def describe(self) -> str:
        lines = [
            f"{self.landlord} reclaimed {self.reclaimed} from {self.tenant}",
            f"  ROAs whacked : {len(self.whacked_roas)}",
        ]
        lines.extend(f"    - {d}" for d in self.whacked_roas)
        if self.recourse:
            lines.append(
                "  reissuance possible only by: " + ", ".join(self.recourse)
            )
        else:
            lines.append("  no authority can reissue this space")
        return "\n".join(lines)


def reclaim_space(
    landlord: CertificateAuthority,
    tenant: CertificateAuthority,
    *,
    roots: list[CertificateAuthority] | None = None,
) -> ReclamationReport:
    """Evict *tenant*: revoke its RC, taking back its whole allocation.

    Returns the report of everything whacked and who could make the
    tenant whole again.  (Partial reclamation — taking back a subset —
    is ``landlord.overwrite_child_cert`` with the shrunken set; this
    function models the full eviction the paper leads with.)
    """
    if tenant.parent is not landlord:
        raise ScenarioError(
            f"{landlord.handle} is not the direct parent of {tenant.handle}"
        )
    reclaimed = tenant.certificate.ip_resources
    # Account the damage before pulling the trigger.
    whacked = [
        DamagedObject("roa", holder.handle, roa.describe())
        for holder, _name, roa in subtree_roas(tenant)
    ]
    whacked += [
        d for d in collateral_of_revocation(tenant, target=None)
        if d.kind == "rc"
    ]
    landlord.revoke_cert(tenant.certificate)
    recourse = (
        [ca.handle for ca in reissuance_candidates(roots, reclaimed)]
        if roots is not None
        else [landlord.handle]
    )
    return ReclamationReport(
        landlord=landlord.handle,
        tenant=tenant.handle,
        reclaimed=reclaimed,
        whacked_roas=[d for d in whacked if d.kind == "roa"],
        recourse=recourse,
    )


def reissuance_candidates(
    roots: list[CertificateAuthority],
    space: ResourceSet | Prefix,
) -> list[CertificateAuthority]:
    """Every authority whose current resources cover *space*.

    This is the victim's entire recourse set: in the RPKI, only holders
    of supersets of the reclaimed space can reissue it.  The list is the
    ancestor chain (plus any unrelated holder of a superset, which the
    strict hierarchy makes impossible in practice).
    """
    if isinstance(space, Prefix):
        space = ResourceSet.parse(str(space))
    candidates: list[CertificateAuthority] = []

    def still_certified(authority: CertificateAuthority) -> bool:
        """An evicted authority holds no power: its RC must still be
        published by its parent to count."""
        parent = authority.parent
        if parent is None:
            return True
        from ..rpki import cert_file_name

        return cert_file_name(authority.certificate) in parent.issued_certs

    def visit(authority: CertificateAuthority) -> None:
        if not still_certified(authority):
            return  # the whole subtree lost its standing
        if authority.resources.covers(space):
            candidates.append(authority)
        for child in authority.children():
            visit(child)

    for root in roots:
        visit(root)
    return candidates
