"""RPKI monitoring: snapshots, diffs, alert classification, detection.

The paper's Section 3.1 open problem — "monitoring schemes that deter
RPKI manipulations by detecting suspiciously reissued objects" — built
out: take global snapshots, diff them, classify the churn, and score the
classifier against injected whack campaigns.
"""

from .alerts import (
    Alert,
    AlertKind,
    analyze,
    detect_equivocation,
    detect_manifest_replay,
)
from .churn import ChurnConfig, ChurnEngine, ChurnEvent
from .diff import CertChange, RoaChange, SnapshotDiff, diff_snapshots
from .experiment import DetectionExperiment, DetectionScore, EpochAlerts
from .snapshot import ObjectRecord, RpkiSnapshot, take_snapshot
from .stall import StallConfig, StallDetector

__all__ = [
    "Alert",
    "AlertKind",
    "CertChange",
    "ChurnConfig",
    "ChurnEngine",
    "ChurnEvent",
    "DetectionExperiment",
    "DetectionScore",
    "EpochAlerts",
    "ObjectRecord",
    "RoaChange",
    "RpkiSnapshot",
    "SnapshotDiff",
    "StallConfig",
    "StallDetector",
    "analyze",
    "detect_equivocation",
    "detect_manifest_replay",
    "diff_snapshots",
    "take_snapshot",
]
