"""Background RPKI churn: the noise a monitor must see through.

"Distinguishing between abusive behavior and normal RPKI churn could be
difficult" (paper, Section 3).  This module generates the churn side:
renewals, new customer ROAs, and retirements.  Retirements are usually
done properly (transparent revocation) but — with probability
``sloppy_delete_prob`` — an operator just deletes the file, which is
indistinguishable *locally* from a stealthy whack and is exactly what
makes the detection problem statistical rather than syntactic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..resources import Prefix, ResourceSet
from ..rpki import CertificateAuthority

__all__ = ["ChurnConfig", "ChurnEvent", "ChurnEngine"]


@dataclass(frozen=True)
class ChurnConfig:
    """Per-tick probabilities of each benign operation (per authority)."""

    renew_rate: float = 0.3
    new_roa_rate: float = 0.15
    retire_rate: float = 0.1
    sloppy_delete_prob: float = 0.25   # retirements done without a CRL entry
    new_roa_length: int = 24


@dataclass(frozen=True)
class ChurnEvent:
    """One benign operation the churn engine performed."""

    authority: str
    action: str      # "renew" | "new-roa" | "retire" | "sloppy-retire"
    subject: str

    def __str__(self) -> str:
        return f"{self.authority}: {self.action} {self.subject}"


class ChurnEngine:
    """Drives benign operations across a set of authorities."""

    def __init__(
        self,
        authorities: list[CertificateAuthority],
        *,
        config: ChurnConfig | None = None,
        seed: int = 0,
        protected: set[str] | None = None,
    ):
        self.authorities = list(authorities)
        self.config = config or ChurnConfig()
        self._rng = random.Random(seed)
        self.events: list[ChurnEvent] = []
        # ROA payloads (Roa.describe() strings) churn must never retire —
        # experiments use this to keep their attack targets alive.
        self.protected = set(protected or ())

    def tick(self) -> list[ChurnEvent]:
        """One epoch of background churn; returns what happened."""
        events: list[ChurnEvent] = []
        for authority in self.authorities:
            renewed = self._maybe_renew(authority)
            events.extend(renewed)
            events.extend(self._maybe_issue(authority))
            # An operator does not renew a ROA and retire it within the
            # same epoch; skip retirement of anything just renewed (a
            # renew-then-retire inside one observation interval would
            # orphan the old EE serial and look like a stealthy whack).
            just_renewed = {e.subject for e in renewed}
            events.extend(
                self._maybe_retire(authority, skip=just_renewed | self.protected)
            )
        self.events.extend(events)
        return events

    # -- operations ------------------------------------------------------------

    def _maybe_renew(self, authority: CertificateAuthority) -> list[ChurnEvent]:
        from ..rpki import IssuanceError

        roas = list(authority.issued_roas)
        if not roas or self._rng.random() >= self.config.renew_rate:
            return []
        name = self._rng.choice(sorted(roas))
        try:
            roa = authority.renew_roa(name)
        except IssuanceError:
            # The authority's certificate no longer covers this ROA — its
            # space was reclaimed or whacked out from under it.  Renewal
            # fails exactly as it would for a real evicted tenant.
            return []
        return [ChurnEvent(authority.handle, "renew", roa.describe())]

    def _maybe_issue(self, authority: CertificateAuthority) -> list[ChurnEvent]:
        if self._rng.random() >= self.config.new_roa_rate:
            return []
        prefix = self._free_prefix(authority)
        if prefix is None:
            return []
        asn = self._rng.randrange(64512, 65535)  # a private-use customer AS
        _, roa = authority.issue_roa(asn, str(prefix))
        return [ChurnEvent(authority.handle, "new-roa", roa.describe())]

    def _maybe_retire(
        self,
        authority: CertificateAuthority,
        skip: set[str] = frozenset(),
    ) -> list[ChurnEvent]:
        roas = sorted(
            name for name in authority.issued_roas
            if authority.roa_named(name).describe() not in skip
        )
        if not roas or self._rng.random() >= self.config.retire_rate:
            return []
        name = self._rng.choice(roas)
        roa = authority.roa_named(name)
        if self._rng.random() < self.config.sloppy_delete_prob:
            authority.delete_object(name)
            return [ChurnEvent(authority.handle, "sloppy-retire", roa.describe())]
        authority.revoke_roa(name)
        return [ChurnEvent(authority.handle, "retire", roa.describe())]

    # -- helpers ----------------------------------------------------------------

    def _free_prefix(self, authority: CertificateAuthority) -> Prefix | None:
        """A prefix of the configured length inside the authority's space
        overlapping none of its current products (children RCs or ROAs)."""
        occupied = ResourceSet.empty()
        for cert in authority.issued_certs.values():
            occupied = occupied.union(cert.ip_resources)
        for roa in authority.issued_roas.values():
            occupied = occupied.union(
                ResourceSet.from_prefixes(rp.prefix for rp in roa.prefixes)
            )
        free = authority.resources.subtract(occupied)
        candidates = [
            p for p in free.prefixes()
            if p.length <= self.config.new_roa_length
        ]
        if not candidates:
            return None
        block = self._rng.choice(candidates)
        subs = list(block.subprefixes(self.config.new_roa_length))
        return self._rng.choice(subs[: min(len(subs), 64)])
