"""Availability monitoring: sustained stalls vs. benign delivery churn.

The snapshot/diff monitor watches *content*; this module watches
*delivery*.  A publication point that misses one refresh is ordinary
Internet weather — the cache's grace window absorbs it.  A point that is
degraded for several *consecutive* refresh epochs is the fingerprint of
a Stalloris-style availability attack (or a dead authority): the relying
party is being held on stale data until the grace window runs out and
its routes downgrade to unknown.

:class:`StallDetector` folds in each refresh cycle's
:class:`~repro.repository.fetch.FetchResult` list and raises a
:data:`~repro.monitor.alerts.AlertKind.SUSTAINED_STALL` alert once a
point's consecutive-degraded streak reaches the configured threshold.
Below the threshold nothing fires, which is what keeps background churn
(one-off flaky fetches, transient unreachability) out of the pager.

The detector also aggregates stalled points per authority (rsync host):
when one host accounts for ``amplification_threshold`` or more
simultaneously stalled points, it raises a single
:data:`~repro.monitor.alerts.AlertKind.AMPLIFIED_STALL` alert for the
host — the delegation-tree amplification fingerprint (one misbehaving
authority minting many slow delegated points to multiply the per-point
cost), which per-point alerts alone would drown in noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..repository.fetch import FetchResult, FetchStatus
from ..repository.uri import RsyncUri
from ..telemetry import MetricsRegistry, default_registry
from .alerts import Alert, AlertKind

__all__ = ["DEGRADED_STATUSES", "StallConfig", "StallDetector"]

# Fetch outcomes that count as "the point did not deliver this epoch".
DEGRADED_STATUSES = frozenset({
    FetchStatus.TIMEOUT,
    FetchStatus.BREAKER_OPEN,
    FetchStatus.UNREACHABLE,
    FetchStatus.FAULTED,
    FetchStatus.UNKNOWN_HOST,
})


@dataclass(frozen=True)
class StallConfig:
    """When a degraded streak becomes an alert."""

    alert_threshold: int = 3   # consecutive degraded epochs before paging
    # Simultaneously stalled points on one host before the aggregated
    # amplified-stall alert fires alongside the per-point pages.
    amplification_threshold: int = 3

    def __post_init__(self) -> None:
        if self.alert_threshold < 1:
            raise ValueError(f"bad alert threshold {self.alert_threshold}")
        if self.amplification_threshold < 2:
            raise ValueError(
                f"bad amplification threshold {self.amplification_threshold}"
            )


class StallDetector:
    """Tracks per-point degraded streaks across refresh epochs.

    Feed it one :meth:`observe` call per refresh cycle (typically
    ``detector.observe(report.fetches)``).  A point's streak grows by one
    per epoch in which its *latest* fetch outcome was degraded and resets
    to zero on any successful delivery.  While a streak is at or past
    ``alert_threshold`` the epoch yields a ``SUSTAINED_STALL`` alert for
    that point — re-raised every epoch the stall persists, because a
    monitor that pages once and goes quiet is how Side Effect 6 outages
    become permanent.
    """

    def __init__(
        self,
        *,
        config: StallConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config if config is not None else StallConfig()
        self.consecutive: dict[str, int] = {}
        self.history: list[list[Alert]] = []
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_alerts = self.metrics.counter(
            "repro_monitor_alerts_total",
            help="alerts raised by the monitor, by kind",
            labelnames=("kind",),
        )
        self._m_stalled = self.metrics.gauge(
            "repro_monitor_stalled_points",
            help="publication points currently at/past the stall threshold",
        )

    def observe(self, fetches: list[FetchResult]) -> list[Alert]:
        """Fold one epoch's fetch outcomes in; returns this epoch's alerts."""
        latest: dict[str, FetchResult] = {}
        for result in fetches:
            latest[result.uri] = result

        alerts: list[Alert] = []
        for uri in sorted(latest):
            result = latest[uri]
            if result.status in DEGRADED_STATUSES:
                streak = self.consecutive.get(uri, 0) + 1
                self.consecutive[uri] = streak
                if streak >= self.config.alert_threshold:
                    alerts.append(Alert(
                        AlertKind.SUSTAINED_STALL, uri, uri,
                        f"degraded for {streak} consecutive refresh epochs "
                        f"(latest: {result.status.value}) — relying parties "
                        "are running on stale cache",
                    ))
            else:
                self.consecutive[uri] = 0

        by_host: dict[str, list[str]] = {}
        for uri in self.stalled_points():
            by_host.setdefault(RsyncUri.parse(uri).host, []).append(uri)
        for host in sorted(by_host):
            stalled = by_host[host]
            if len(stalled) < self.config.amplification_threshold:
                continue
            alerts.append(Alert(
                AlertKind.AMPLIFIED_STALL, stalled[0], host,
                f"{len(stalled)} publication points of one authority "
                "sustainedly stalled at once — delegation-tree "
                "amplification (a Stalloris-grade slowdown, not an outage)",
            ))

        self.history.append(alerts)
        for alert in alerts:
            self._m_alerts.inc(kind=alert.kind.value)
        self._m_stalled.set(len(self.stalled_points()))
        return alerts

    def stalled_points(self) -> list[str]:
        """Points currently at or past the alert threshold, sorted."""
        return sorted(
            uri for uri, streak in self.consecutive.items()
            if streak >= self.config.alert_threshold
        )
