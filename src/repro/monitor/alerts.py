"""Alert classification: separating abuse from churn.

The paper's open problem in executable form.  Given a snapshot diff, the
analyzer emits typed alerts:

=========================  ====================================================
alert                      signature
=========================  ====================================================
``TRANSPARENT_REVOCATION`` object withdrawn AND its serial appears on the
                           issuer's CRL — visible, accountable revocation.
``STEALTHY_DELETION``      object withdrawn with NO CRL entry (Side Effect 2).
``RC_SHRUNK``              a certificate replaced in place with strictly less
                           address space (the Side Effect 3 primitive); the
                           alert lists the ROAs the lost space was covering.
``SUSPICIOUS_REISSUE``     a new ROA authorizing (prefixes, asn) that some
                           *other* authority's ROA authorized in the previous
                           snapshot, while that ROA was whacked — the
                           make-before-break fingerprint (Figure 3).
``RENEWAL``                a ROA replaced by one with identical payload —
                           benign churn, reported at INFO level.
``SUSTAINED_STALL``        a publication point degraded (timeouts, stalls,
                           breaker-open) for N consecutive refresh epochs —
                           the Stalloris availability-attack fingerprint,
                           raised by :class:`repro.monitor.stall.StallDetector`
                           rather than by :func:`analyze`.
``AMPLIFIED_STALL``        many publication points of ONE authority (rsync
                           host) sustainedly stalled at once — the
                           delegation-tree amplification fingerprint: an
                           attacker minting slow delegated points to multiply
                           the per-point cost, raised by the stall detector's
                           per-host aggregation.
``EQUIVOCATION``           the same publication point served different
                           content to different fetchers in the same epoch
                           — the split-view Byzantine fault, raised by
                           :func:`detect_equivocation` over vantage views.
``MANIFEST_REPLAY``        a point's manifest ``thisUpdate`` moved backwards
                           between snapshots — a stale-but-signed past state
                           is being served, raised by
                           :func:`detect_manifest_replay`.
=========================  ====================================================

"Distinguishing between abusive behavior and normal RPKI churn could be
difficult" (Section 3) — the detection experiment in the benchmarks
quantifies exactly how difficult, by scoring these alerts against ground
truth over churny histories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..repository.cache import point_digest
from ..rpki import Manifest, Roa
from .diff import SnapshotDiff
from .snapshot import RpkiSnapshot

__all__ = [
    "AlertKind",
    "Alert",
    "analyze",
    "detect_equivocation",
    "detect_manifest_replay",
]


class AlertKind(enum.Enum):
    TRANSPARENT_REVOCATION = "transparent-revocation"
    STEALTHY_DELETION = "stealthy-deletion"
    RC_SHRUNK = "rc-shrunk"
    SUSPICIOUS_REISSUE = "suspicious-reissue"
    RENEWAL = "renewal"
    SUSTAINED_STALL = "sustained-stall"
    AMPLIFIED_STALL = "amplified-stall"
    EQUIVOCATION = "equivocation"
    MANIFEST_REPLAY = "manifest-replay"


_SEVERITY = {
    AlertKind.TRANSPARENT_REVOCATION: "notice",
    AlertKind.STEALTHY_DELETION: "warning",
    AlertKind.RC_SHRUNK: "warning",
    AlertKind.SUSPICIOUS_REISSUE: "critical",
    AlertKind.RENEWAL: "info",
    AlertKind.SUSTAINED_STALL: "critical",
    AlertKind.AMPLIFIED_STALL: "critical",
    AlertKind.EQUIVOCATION: "critical",
    AlertKind.MANIFEST_REPLAY: "critical",
}


@dataclass(frozen=True)
class Alert:
    kind: AlertKind
    point_uri: str
    subject: str       # what object/space the alert is about
    detail: str
    contact: str | None = None   # who to call (from Ghostbusters, RFC 6493)

    @property
    def severity(self) -> str:
        return _SEVERITY[self.kind]

    @property
    def is_suspicious(self) -> bool:
        """Alerts a deterrence monitor would page on."""
        return self.kind in (
            AlertKind.STEALTHY_DELETION,
            AlertKind.RC_SHRUNK,
            AlertKind.SUSPICIOUS_REISSUE,
            AlertKind.SUSTAINED_STALL,
            AlertKind.AMPLIFIED_STALL,
            AlertKind.EQUIVOCATION,
            AlertKind.MANIFEST_REPLAY,
        )

    def __str__(self) -> str:
        text = f"[{self.severity}] {self.kind.value}: {self.subject} — {self.detail}"
        if self.contact:
            text += f" (contact: {self.contact})"
        return text


def analyze(
    diff: SnapshotDiff,
    before: RpkiSnapshot,
    after: RpkiSnapshot,
) -> list[Alert]:
    """Turn a structural diff into classified alerts.

    Each alert carries the affected point's Ghostbusters contact (from the
    *before* snapshot — the victim's own card, as it stood pre-incident).
    """

    def contact_of(point_uri: str) -> str | None:
        record = before.contact_for(point_uri)
        if record is None:
            return None
        email = record.email
        return f"{record.full_name} <{email}>" if email else record.full_name

    def victim_contact_of_cert(cert) -> str | None:
        """A certificate's *subject* is the victim; its contact lives at
        the subject's own publication point (the SIA), not at the issuer's
        point where the change was observed."""
        if not cert.sia:
            return None
        from ..repository.uri import RsyncUri

        try:
            return contact_of(str(RsyncUri.parse(cert.sia)))
        except Exception:
            return None

    alerts: list[Alert] = []
    after_revoked = after.revoked_serials()

    # -- withdrawals: transparent vs stealthy --------------------------------
    whacked_payloads: set[str] = set()
    for record in diff.removed_roas():
        assert isinstance(record.obj, Roa)
        serial = record.obj.ee_cert.serial
        revoked_here = serial in after_revoked.get(record.point_uri, frozenset())
        whacked_payloads.add(record.obj.describe())
        if revoked_here:
            alerts.append(Alert(
                AlertKind.TRANSPARENT_REVOCATION, record.point_uri,
                record.obj.describe(),
                f"ROA withdrawn with CRL entry for EE serial {serial}",
                contact=contact_of(record.point_uri),
            ))
        else:
            alerts.append(Alert(
                AlertKind.STEALTHY_DELETION, record.point_uri,
                record.obj.describe(),
                "ROA vanished with no corresponding CRL entry",
                contact=contact_of(record.point_uri),
            ))
    for record in diff.removed_certs():
        serial = record.obj.serial
        revoked_here = serial in after_revoked.get(record.point_uri, frozenset())
        kind = (
            AlertKind.TRANSPARENT_REVOCATION if revoked_here
            else AlertKind.STEALTHY_DELETION
        )
        alerts.append(Alert(
            kind, record.point_uri,
            f"RC for {record.obj.subject!r}",
            "certificate withdrawn"
            + (" with CRL entry" if revoked_here else " with no CRL entry"),
            contact=victim_contact_of_cert(record.obj),
        ))

    # -- in-place certificate shrinks -------------------------------------------
    for change in diff.shrunken_certs():
        lost = change.lost_resources
        # Which ROAs (previous snapshot) did the lost space cover?
        whacked = [
            record.obj.describe()
            for record in before.roas()
            if isinstance(record.obj, Roa)
            and any(lost.overlaps(rp.prefix) for rp in record.obj.prefixes)
        ]
        whacked_payloads.update(whacked)
        detail = f"lost {lost}"
        if whacked:
            detail += "; covering ROAs now invalid: " + ", ".join(whacked)
        alerts.append(Alert(
            AlertKind.RC_SHRUNK, change.point_uri,
            f"RC for {change.after.subject!r}", detail,
            contact=victim_contact_of_cert(change.after),
        ))

    # -- renewals and semantic ROA rewrites ----------------------------------------
    for change in diff.roa_changes:
        if change.same_payload:
            alerts.append(Alert(
                AlertKind.RENEWAL, change.point_uri,
                change.after.describe(), "ROA reissued with identical payload",
            ))
        else:
            whacked_payloads.add(change.before.describe())
            alerts.append(Alert(
                AlertKind.STEALTHY_DELETION, change.point_uri,
                change.before.describe(),
                f"ROA overwritten by {change.after.describe()}",
            ))

    # -- the make-before-break fingerprint --------------------------------------------
    before_index = before.roa_payload_index()
    for record in diff.added_roas():
        assert isinstance(record.obj, Roa)
        payload = record.obj.describe()
        previous_holders = {
            r.point_uri for r in before_index.get(payload, [])
        }
        if not previous_holders:
            continue
        if record.point_uri in previous_holders:
            continue
        if payload in whacked_payloads or any(
            (uri, name) not in after.records
            for uri, name in (
                (r.point_uri, r.file_name) for r in before_index[payload]
            )
        ):
            alerts.append(Alert(
                AlertKind.SUSPICIOUS_REISSUE, record.point_uri,
                payload,
                "ROA reissued at a different publication point while the "
                f"original (at {', '.join(sorted(previous_holders))}) was whacked",
            ))
    return alerts


def detect_equivocation(
    views: dict[str, dict[str, dict[str, bytes]]],
) -> list[Alert]:
    """Cross-check per-vantage fetches for split-view serving.

    *views* maps fetcher identity → (point URI → file name → bytes): the
    contents each vantage point saw when syncing in the same epoch.  An
    honest publication point shows every fetcher the same bytes; a point
    whose content digest differs across identities is equivocating — the
    :data:`~repro.repository.faults.FaultKind.SPLIT_VIEW` Byzantine fault
    no single relying party can notice on its own.
    """
    digests: dict[str, dict[str, str]] = {}  # point -> identity -> digest
    for identity, points in views.items():
        for point_uri, files in points.items():
            digests.setdefault(point_uri, {})[identity] = point_digest(files)
    alerts: list[Alert] = []
    for point_uri in sorted(digests):
        seen = digests[point_uri]
        if len(set(seen.values())) <= 1:
            continue
        groups: dict[str, list[str]] = {}
        for identity, digest in seen.items():
            groups.setdefault(digest, []).append(identity)
        description = "; ".join(
            f"{digest[:12]}… seen by {', '.join(sorted(ids))}"
            for digest, ids in sorted(groups.items())
        )
        alerts.append(Alert(
            AlertKind.EQUIVOCATION, point_uri, point_uri,
            f"point served {len(groups)} distinct views in one epoch: "
            f"{description}",
        ))
    return alerts


def detect_manifest_replay(
    before: RpkiSnapshot, after: RpkiSnapshot
) -> list[Alert]:
    """Flag points whose manifest ``thisUpdate`` moved backwards.

    An authority only ever signs manifests with non-decreasing issue
    times, so a regression between two monitor snapshots means someone is
    serving a stale-but-signed past state — the manifest-replay Byzantine
    fault (hiding newer ROAs, or resurrecting whacked ones).
    """
    previous: dict[str, int] = {}
    for record in before.manifests():
        assert isinstance(record.obj, Manifest)
        previous[record.point_uri] = record.obj.this_update
    alerts: list[Alert] = []
    for record in sorted(after.manifests(), key=lambda r: r.point_uri):
        assert isinstance(record.obj, Manifest)
        issued_before = previous.get(record.point_uri)
        if issued_before is None or record.obj.this_update >= issued_before:
            continue
        alerts.append(Alert(
            AlertKind.MANIFEST_REPLAY, record.point_uri, record.file_name,
            f"manifest thisUpdate went backwards: {issued_before} -> "
            f"{record.obj.this_update} (stale signed state being served)",
        ))
    return alerts
