"""Point-in-time snapshots of the global RPKI publication state.

The monitor is the paper's proposed countermeasure sketch: "one of the
open problems we are working on is the design of monitoring schemes that
deter RPKI manipulations by detecting suspiciously reissued objects"
(Section 3.1).  A monitor watches from outside: it fetches everything,
remembers what it saw, and diffs.

A snapshot is purely syntactic — bytes per file per publication point,
plus a parsed-object index.  Interpretation (what changed, and does it
look like an attack?) lives in :mod:`repro.monitor.diff` and
:mod:`repro.monitor.alerts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..repository import RepositoryRegistry
from ..rpki import Crl, GhostbustersRecord, Manifest, ResourceCertificate, Roa, SignedObject
from ..rpki.errors import ObjectFormatError
from ..rpki.parse import parse_object

__all__ = ["ObjectRecord", "RpkiSnapshot", "take_snapshot"]


@dataclass(frozen=True)
class ObjectRecord:
    """One published object as the monitor saw it."""

    point_uri: str
    file_name: str
    obj: SignedObject

    @property
    def kind(self) -> str:
        return self.obj.TYPE


@dataclass
class RpkiSnapshot:
    """Everything published across all repositories, at one instant."""

    taken_at: int
    files: dict[str, dict[str, bytes]] = field(default_factory=dict)
    records: dict[tuple[str, str], ObjectRecord] = field(default_factory=dict)
    unparsable: list[tuple[str, str]] = field(default_factory=list)

    # -- typed views -----------------------------------------------------------

    def certs(self) -> list[ObjectRecord]:
        return [r for r in self.records.values() if isinstance(r.obj, ResourceCertificate)]

    def roas(self) -> list[ObjectRecord]:
        return [r for r in self.records.values() if isinstance(r.obj, Roa)]

    def crls(self) -> list[ObjectRecord]:
        return [r for r in self.records.values() if isinstance(r.obj, Crl)]

    def manifests(self) -> list[ObjectRecord]:
        return [r for r in self.records.values() if isinstance(r.obj, Manifest)]

    def contact_for(self, point_uri: str) -> GhostbustersRecord | None:
        """The Ghostbusters record published at a point, if any —
        the person to call about an alert concerning that point."""
        for record in self.records.values():
            if record.point_uri == point_uri and isinstance(
                record.obj, GhostbustersRecord
            ):
                return record.obj
        return None

    def revoked_serials(self) -> dict[str, frozenset[int]]:
        """Per point URI, the serials its CRL currently revokes."""
        out: dict[str, frozenset[int]] = {}
        for record in self.crls():
            assert isinstance(record.obj, Crl)
            out[record.point_uri] = record.obj.revoked_serials
        return out

    def roa_payload_index(self) -> dict[str, list[ObjectRecord]]:
        """ROAs indexed by their payload signature '(prefixes, asn)'.

        Two ROAs with the same index entry authorize the same routes —
        the key the suspicious-reissue detector joins on.
        """
        index: dict[str, list[ObjectRecord]] = {}
        for record in self.roas():
            assert isinstance(record.obj, Roa)
            index.setdefault(record.obj.describe(), []).append(record)
        return index

    def __len__(self) -> int:
        return len(self.records)


def take_snapshot(registry: RepositoryRegistry, now: int) -> RpkiSnapshot:
    """Fetch-and-parse everything in every registered repository.

    The monitor is assumed to have connectivity (it is exactly the kind
    of out-of-band observer the paper's countermeasures rely on), so this
    reads repository contents directly rather than going through a
    relying party's delivery path.
    """
    snapshot = RpkiSnapshot(taken_at=now)
    for server in registry.servers():
        for point in server.points():
            uri = str(point.uri)
            file_map: dict[str, bytes] = {}
            for name in point.names():
                data = point.get(name)
                assert data is not None
                file_map[name] = data
                try:
                    obj = parse_object(data)
                except ObjectFormatError:
                    snapshot.unparsable.append((uri, name))
                    continue
                snapshot.records[(uri, name)] = ObjectRecord(
                    point_uri=uri, file_name=name, obj=obj
                )
            snapshot.files[uri] = file_map
    return snapshot
