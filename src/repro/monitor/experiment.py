"""The detection experiment: whack campaigns hidden in churn.

Scores the monitor's alerts against ground truth: over a history of
epochs, benign churn runs every epoch and attacks are injected at chosen
epochs.  An attacked ROA counts as *detected* if some suspicious alert in
the attack epoch names its payload (or the certificate shrink that killed
it).  Churn-only epochs that raise suspicious alerts contribute false
positives — which, thanks to sloppy operators who delete instead of
revoking, they do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..repository import RepositoryRegistry
from ..simtime import Clock, HOUR
from ..telemetry import MetricsRegistry, default_registry
from .alerts import Alert, AlertKind, analyze
from .churn import ChurnEngine
from .diff import diff_snapshots
from .snapshot import RpkiSnapshot, take_snapshot

__all__ = ["EpochAlerts", "DetectionScore", "DetectionExperiment"]

# An attack is a callable that mutates the world and returns the payload
# descriptions (Roa.describe() strings) of the ROAs it whacked.
AttackFn = Callable[[], list[str]]


@dataclass
class EpochAlerts:
    epoch: int
    alerts: list[Alert]
    churn_events: int
    attacked_payloads: list[str]

    @property
    def suspicious(self) -> list[Alert]:
        return [a for a in self.alerts if a.is_suspicious]


@dataclass
class DetectionScore:
    """Precision/recall of suspicious alerts against injected attacks."""

    true_positives: int = 0
    false_negatives: int = 0
    false_positive_alerts: int = 0
    suspicious_alerts: int = 0
    alerts_by_kind: dict[AlertKind, int] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 1.0

    @property
    def precision(self) -> float:
        if not self.suspicious_alerts:
            return 1.0
        return 1.0 - self.false_positive_alerts / self.suspicious_alerts

    def render(self) -> str:
        lines = [
            f"recall    : {self.recall:.2f} "
            f"({self.true_positives}/{self.true_positives + self.false_negatives}"
            " attacked ROAs flagged)",
            f"precision : {self.precision:.2f} "
            f"({self.suspicious_alerts - self.false_positive_alerts}"
            f"/{self.suspicious_alerts} suspicious alerts were real attacks)",
        ]
        for kind in AlertKind:
            count = self.alerts_by_kind.get(kind, 0)
            if count:
                lines.append(f"  {kind.value:<24}: {count}")
        return "\n".join(lines)


class DetectionExperiment:
    """Run churn + attacks and score the monitor, epoch by epoch."""

    def __init__(
        self,
        *,
        registry: RepositoryRegistry,
        churn: ChurnEngine,
        clock: Clock,
        epoch_seconds: int = HOUR,
        metrics: MetricsRegistry | None = None,
    ):
        self.registry = registry
        self.churn = churn
        self.clock = clock
        self.epoch_seconds = epoch_seconds
        self.history: list[EpochAlerts] = []
        self._last_snapshot: RpkiSnapshot = take_snapshot(registry, clock.now)
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_epochs = self.metrics.counter(
            "repro_monitor_epochs_total", help="monitor epochs executed"
        )
        self._m_alerts = self.metrics.counter(
            "repro_monitor_alerts_total",
            help="alerts raised by the monitor, by kind",
            labelnames=("kind",),
        )
        self._m_detections = self.metrics.counter(
            "repro_monitor_detections_total",
            help="attacked ROAs flagged by a suspicious alert in their epoch",
        )
        self._m_missed = self.metrics.counter(
            "repro_monitor_missed_attacks_total",
            help="attacked ROAs that no suspicious alert flagged",
        )
        self._m_false_positives = self.metrics.counter(
            "repro_monitor_false_positives_total",
            help="suspicious alerts not explained by any attack in their epoch",
        )

    def run_epoch(self, attack: AttackFn | None = None) -> EpochAlerts:
        """One epoch: churn, optional attack, snapshot, diff, classify."""
        self.clock.advance(self.epoch_seconds)
        churn_events = self.churn.tick()
        attacked = attack() if attack is not None else []

        snapshot = take_snapshot(self.registry, self.clock.now)
        diff = diff_snapshots(self._last_snapshot, snapshot)
        alerts = analyze(diff, self._last_snapshot, snapshot)
        self._last_snapshot = snapshot

        epoch = EpochAlerts(
            epoch=len(self.history),
            alerts=alerts,
            churn_events=len(churn_events),
            attacked_payloads=attacked,
        )
        self.history.append(epoch)
        self._m_epochs.inc()
        for alert in alerts:
            self._m_alerts.inc(kind=alert.kind.value)
        detected, missed, false_positives = _score_epoch(epoch)
        if detected:
            self._m_detections.inc(detected)
        if missed:
            self._m_missed.inc(missed)
        if false_positives:
            self._m_false_positives.inc(false_positives)
        return epoch

    def score(self) -> DetectionScore:
        """Score all epochs so far."""
        score = DetectionScore()
        for epoch in self.history:
            for alert in epoch.alerts:
                score.alerts_by_kind[alert.kind] = (
                    score.alerts_by_kind.get(alert.kind, 0) + 1
                )
            score.suspicious_alerts += len(epoch.suspicious)
            detected, missed, false_positives = _score_epoch(epoch)
            score.true_positives += detected
            score.false_negatives += missed
            score.false_positive_alerts += false_positives
        return score


def _score_epoch(epoch: EpochAlerts) -> tuple[int, int, int]:
    """(detected, missed, false-positive) counts for one epoch.

    An attacked payload counts as detected when some suspicious alert's
    subject/detail names it; a suspicious alert not explained by any
    attacked payload of its epoch is a false positive.
    """
    suspicious = epoch.suspicious
    flagged_payloads = " | ".join(f"{a.subject} {a.detail}" for a in suspicious)
    detected = sum(
        1 for payload in epoch.attacked_payloads if payload in flagged_payloads
    )
    missed = len(epoch.attacked_payloads) - detected
    false_positives = sum(
        1 for alert in suspicious
        if not any(p in f"{alert.subject} {alert.detail}"
                   for p in epoch.attacked_payloads)
    )
    return detected, missed, false_positives
