"""Structural diffs between RPKI snapshots.

The diff layer answers "what changed?" without judging it: files added,
removed, or replaced, and — object-aware — certificates whose resource
sets shrank, ROAs that vanished, serials newly revoked.  The alert layer
on top decides what looks abusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ResourceSet
from ..rpki import Crl, ResourceCertificate, Roa
from .snapshot import ObjectRecord, RpkiSnapshot

__all__ = ["CertChange", "RoaChange", "SnapshotDiff", "diff_snapshots"]


@dataclass(frozen=True)
class CertChange:
    """A certificate replaced under the same file name."""

    point_uri: str
    file_name: str
    before: ResourceCertificate
    after: ResourceCertificate

    @property
    def lost_resources(self) -> ResourceSet:
        return self.before.ip_resources.subtract(self.after.ip_resources)

    @property
    def shrank(self) -> bool:
        """True if the new certificate holds strictly less address space."""
        return not self.lost_resources.is_empty()

    @property
    def same_key(self) -> bool:
        return self.before.subject_key_id == self.after.subject_key_id


@dataclass(frozen=True)
class RoaChange:
    """A ROA replaced under the same file name."""

    point_uri: str
    file_name: str
    before: Roa
    after: Roa

    @property
    def same_payload(self) -> bool:
        """Same (prefixes, asn): a renewal, not a semantic change."""
        return (
            self.before.describe() == self.after.describe()
        )


@dataclass
class SnapshotDiff:
    """Everything that changed between two snapshots."""

    before_at: int
    after_at: int
    added: list[ObjectRecord] = field(default_factory=list)
    removed: list[ObjectRecord] = field(default_factory=list)
    cert_changes: list[CertChange] = field(default_factory=list)
    roa_changes: list[RoaChange] = field(default_factory=list)
    newly_revoked: dict[str, set[int]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.cert_changes
            or self.roa_changes
            or any(self.newly_revoked.values())
        )

    def removed_roas(self) -> list[ObjectRecord]:
        return [r for r in self.removed if isinstance(r.obj, Roa)]

    def removed_certs(self) -> list[ObjectRecord]:
        return [r for r in self.removed if isinstance(r.obj, ResourceCertificate)]

    def added_roas(self) -> list[ObjectRecord]:
        return [r for r in self.added if isinstance(r.obj, Roa)]

    def shrunken_certs(self) -> list[CertChange]:
        return [c for c in self.cert_changes if c.shrank]


def diff_snapshots(before: RpkiSnapshot, after: RpkiSnapshot) -> SnapshotDiff:
    """Compute the structural delta between two snapshots."""
    diff = SnapshotDiff(before_at=before.taken_at, after_at=after.taken_at)

    before_keys = set(before.records)
    after_keys = set(after.records)

    for key in sorted(after_keys - before_keys):
        diff.added.append(after.records[key])
    for key in sorted(before_keys - after_keys):
        diff.removed.append(before.records[key])

    for key in sorted(before_keys & after_keys):
        old = before.records[key]
        new = after.records[key]
        if old.obj == new.obj:
            continue
        if isinstance(old.obj, ResourceCertificate) and isinstance(
            new.obj, ResourceCertificate
        ):
            diff.cert_changes.append(CertChange(
                point_uri=key[0], file_name=key[1],
                before=old.obj, after=new.obj,
            ))
        elif isinstance(old.obj, Roa) and isinstance(new.obj, Roa):
            diff.roa_changes.append(RoaChange(
                point_uri=key[0], file_name=key[1],
                before=old.obj, after=new.obj,
            ))
        # CRL/manifest churn is expected on every publish; the revocation
        # delta below captures the meaningful part.

    before_revoked = before.revoked_serials()
    after_revoked = after.revoked_serials()
    for uri, serials in after_revoked.items():
        delta = set(serials) - set(before_revoked.get(uri, frozenset()))
        if delta:
            diff.newly_revoked[uri] = delta
    return diff
