"""Exceptions raised by the BGP simulation layer."""

from __future__ import annotations


class BgpError(Exception):
    """Base class for BGP-layer errors."""


class TopologyError(BgpError):
    """An AS graph was malformed (unknown AS, conflicting link, self-link)."""


class AnnouncementError(BgpError):
    """An announcement was malformed (empty path, loop, foreign origin)."""
