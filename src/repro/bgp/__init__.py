"""BGP simulation: topology, Gao–Rexford propagation, RPKI-aware policies,
longest-prefix-match forwarding, and origin hijack attacks."""

from .attacks import Hijack, prefix_hijack, subprefix_hijack
from .errors import AnnouncementError, BgpError, TopologyError
from .forwarding import DeliveryOutcome, forward, reachable
from .gen import GeneratedTopology, TopologyConfig, generate_topology
from .policy import LocalPolicy, SelectionPolicy, policy_table
from .propagation import Origination, RoutingOutcome, propagate
from .routes import Announcement, Rib
from .topology import AsGraph, Relationship

__all__ = [
    "Announcement",
    "AnnouncementError",
    "AsGraph",
    "BgpError",
    "DeliveryOutcome",
    "GeneratedTopology",
    "TopologyConfig",
    "generate_topology",
    "Hijack",
    "LocalPolicy",
    "Origination",
    "Relationship",
    "Rib",
    "RoutingOutcome",
    "SelectionPolicy",
    "TopologyError",
    "forward",
    "policy_table",
    "prefix_hijack",
    "propagate",
    "reachable",
    "subprefix_hijack",
]
