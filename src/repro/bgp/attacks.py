"""BGP origin attacks: prefix and subprefix hijacks.

"The most devastating attacks on interdomain routing with BGP; namely,
prefix and subprefix hijacks, where an AS originates routes for IP
prefixes that it is not authorized to originate" (paper, Section 1).
These are the attacks the RPKI exists to stop — the *original* threat
model, against which Table 6 weighs the flipped one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import ASN, Prefix
from .propagation import Origination

__all__ = ["Hijack", "prefix_hijack", "subprefix_hijack"]


@dataclass(frozen=True)
class Hijack:
    """A hijack scenario: the victim's origination plus the attacker's."""

    victim: Origination
    attack: Origination

    @property
    def originations(self) -> list[Origination]:
        return [self.victim, self.attack]

    @property
    def attacker(self) -> ASN:
        return self.attack.origin

    def describe(self) -> str:
        return (
            f"{self.attack.origin} hijacks {self.attack.prefix} "
            f"from {self.victim.origin} ({self.victim.prefix})"
        )


def prefix_hijack(
    victim_prefix: str | Prefix, victim: ASN | int, attacker: ASN | int
) -> Hijack:
    """The attacker originates the victim's exact prefix.

    Selection-level competition: each AS picks whichever origination its
    policies prefer; the victim keeps the ASes "closer" to it.
    """
    prefix = (
        victim_prefix if isinstance(victim_prefix, Prefix)
        else Prefix.parse(victim_prefix)
    )
    return Hijack(
        victim=Origination(prefix, ASN(int(victim))),
        attack=Origination(prefix, ASN(int(attacker))),
    )


def subprefix_hijack(
    victim_prefix: str | Prefix,
    victim: ASN | int,
    attacker: ASN | int,
    *,
    subprefix: str | Prefix | None = None,
) -> Hijack:
    """The attacker originates a subprefix of the victim's prefix.

    Without RPKI filtering this wins *everywhere*: longest-prefix-match
    forwarding prefers the more specific route at every hop.  By default
    the attacker announces the low half (one bit longer); pass *subprefix*
    to choose another.
    """
    prefix = (
        victim_prefix if isinstance(victim_prefix, Prefix)
        else Prefix.parse(victim_prefix)
    )
    if subprefix is None:
        attack_prefix = prefix.children()[0]
    else:
        attack_prefix = (
            subprefix if isinstance(subprefix, Prefix)
            else Prefix.parse(subprefix)
        )
        if not prefix.covers(attack_prefix) or attack_prefix == prefix:
            raise ValueError(
                f"{attack_prefix} is not a proper subprefix of {prefix}"
            )
    return Hijack(
        victim=Origination(prefix, ASN(int(victim))),
        attack=Origination(attack_prefix, ASN(int(attacker))),
    )
