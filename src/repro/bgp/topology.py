"""AS-level topology with business relationships.

The standard academic model of interdomain structure (and the one the
paper's authors use in their companion work, e.g. Goldberg et al.,
SIGCOMM'10): ASes connected by *customer-provider* or *peer-peer* links,
with Gao–Rexford routing policies defined over those relationships.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from ..resources import ASN
from .errors import TopologyError

__all__ = ["Relationship", "AsGraph"]


class Relationship(enum.Enum):
    """How a neighbor's route was learned, from the local AS's viewpoint."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    @property
    def preference(self) -> int:
        """Gao–Rexford preference class: customers best (0), providers worst."""
        return _PREFS[self]


_PREFS = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


class AsGraph:
    """An AS-level topology: nodes are ASNs, edges carry relationships."""

    def __init__(self) -> None:
        self._providers: dict[ASN, set[ASN]] = {}
        self._customers: dict[ASN, set[ASN]] = {}
        self._peers: dict[ASN, set[ASN]] = {}

    # -- construction ---------------------------------------------------------

    def add_as(self, asn: ASN | int) -> ASN:
        asn = ASN(int(asn))
        self._providers.setdefault(asn, set())
        self._customers.setdefault(asn, set())
        self._peers.setdefault(asn, set())
        return asn

    def add_provider(self, customer: ASN | int, provider: ASN | int) -> None:
        """Record that *provider* sells transit to *customer*."""
        customer = self.add_as(customer)
        provider = self.add_as(provider)
        if customer == provider:
            raise TopologyError(f"{customer} cannot be its own provider")
        if provider in self._peers[customer] or customer in self._providers[provider]:
            raise TopologyError(
                f"conflicting relationship between {customer} and {provider}"
            )
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_peering(self, left: ASN | int, right: ASN | int) -> None:
        """Record a settlement-free peering between two ASes."""
        left = self.add_as(left)
        right = self.add_as(right)
        if left == right:
            raise TopologyError(f"{left} cannot peer with itself")
        if right in self._providers[left] or right in self._customers[left]:
            raise TopologyError(
                f"conflicting relationship between {left} and {right}"
            )
        self._peers[left].add(right)
        self._peers[right].add(left)

    # -- queries ------------------------------------------------------------------

    def ases(self) -> Iterator[ASN]:
        return iter(sorted(self._providers))

    def __contains__(self, asn: ASN | int) -> bool:
        return ASN(int(asn)) in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def providers_of(self, asn: ASN | int) -> set[ASN]:
        return set(self._providers[ASN(int(asn))])

    def customers_of(self, asn: ASN | int) -> set[ASN]:
        return set(self._customers[ASN(int(asn))])

    def peers_of(self, asn: ASN | int) -> set[ASN]:
        return set(self._peers[ASN(int(asn))])

    def neighbors_of(self, asn: ASN | int) -> dict[ASN, Relationship]:
        """All neighbors with the *local* AS's view of the relationship."""
        asn = ASN(int(asn))
        out: dict[ASN, Relationship] = {}
        for neighbor in self._customers[asn]:
            out[neighbor] = Relationship.CUSTOMER
        for neighbor in self._peers[asn]:
            out[neighbor] = Relationship.PEER
        for neighbor in self._providers[asn]:
            out[neighbor] = Relationship.PROVIDER
        return out

    def relationship(self, local: ASN | int, neighbor: ASN | int) -> Relationship:
        """The relationship of *neighbor* as seen from *local*."""
        local, neighbor = ASN(int(local)), ASN(int(neighbor))
        if neighbor in self._customers[local]:
            return Relationship.CUSTOMER
        if neighbor in self._peers[local]:
            return Relationship.PEER
        if neighbor in self._providers[local]:
            return Relationship.PROVIDER
        raise TopologyError(f"{neighbor} is not adjacent to {local}")

    def links(self) -> Iterator[tuple[ASN, ASN, Relationship]]:
        """Every directed link (local, neighbor, neighbor's role for local)."""
        for asn in self.ases():
            for neighbor, rel in sorted(self.neighbors_of(asn).items()):
                yield asn, neighbor, rel

    # -- convenience builders ------------------------------------------------------

    @classmethod
    def from_links(
        cls,
        provider_links: Iterable[tuple[int, int]] = (),
        peer_links: Iterable[tuple[int, int]] = (),
    ) -> "AsGraph":
        """Build from ``(provider, customer)`` and ``(left, right)`` pairs."""
        graph = cls()
        for provider, customer in provider_links:
            graph.add_provider(customer, provider)
        for left, right in peer_links:
            graph.add_peering(left, right)
        return graph
