"""The data plane: hop-by-hop longest-prefix-match forwarding.

Control-plane convergence says who *selected* which route; delivery is
decided hop by hop, each AS forwarding to the next hop of its own most
specific matching route.  Modeling the walk explicitly is what lets the
simulator show interception: a subprefix hijacker attracts packets at
*every* hop whose RIB contains the more specific route, regardless of what
the sender selected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import ASN, Afi, Prefix, parse_address
from .propagation import RoutingOutcome

__all__ = ["DeliveryOutcome", "forward", "reachable"]


@dataclass(frozen=True)
class DeliveryOutcome:
    """What happened to a packet sent from *source* toward *destination*."""

    source: ASN
    destination: Prefix
    delivered_to: ASN | None   # the AS that terminated the packet
    hops: tuple[ASN, ...]      # the ASes traversed, source first
    blackholed: bool           # some hop had no route
    looped: bool               # forwarding revisited an AS

    @property
    def delivered(self) -> bool:
        return self.delivered_to is not None


def forward(
    outcome: RoutingOutcome,
    source: ASN | int,
    destination: str | Prefix,
    *,
    max_hops: int = 64,
) -> DeliveryOutcome:
    """Trace a packet from *source* toward *destination* (an address).

    *destination* may be an address string or a host prefix.  The packet
    terminates at the first AS that originates the route its own RIB
    matches — the origin's network delivers locally.  If some hop has no
    covering route, the packet is blackholed there.
    """
    source = ASN(int(source))
    if isinstance(destination, str):
        afi, address = parse_address(destination)
        destination = Prefix(afi, address, afi.bits)
    elif destination.length != destination.afi.bits:
        destination = Prefix(
            destination.afi, destination.network, destination.afi.bits
        )

    hops: list[ASN] = [source]
    visited = {source}
    current = source
    for _ in range(max_hops):
        route = outcome.rib_of(current).lookup(destination)
        if route is None:
            return DeliveryOutcome(
                source=source, destination=destination, delivered_to=None,
                hops=tuple(hops), blackholed=True, looped=False,
            )
        if route.is_origination:
            return DeliveryOutcome(
                source=source, destination=destination, delivered_to=current,
                hops=tuple(hops), blackholed=False, looped=False,
            )
        next_hop = route.next_hop
        assert next_hop is not None
        if next_hop in visited:
            return DeliveryOutcome(
                source=source, destination=destination, delivered_to=None,
                hops=tuple(hops + [next_hop]), blackholed=False, looped=True,
            )
        visited.add(next_hop)
        hops.append(next_hop)
        current = next_hop
    return DeliveryOutcome(
        source=source, destination=destination, delivered_to=None,
        hops=tuple(hops), blackholed=False, looped=True,
    )


def reachable(
    outcome: RoutingOutcome,
    source: ASN | int,
    destination: str | Prefix,
    intended_origin: ASN | int,
) -> bool:
    """True iff packets from *source* actually reach *intended_origin*.

    The paper's Table 6 metric: "prefix reachable during..." — delivery to
    a hijacker counts as unreachable.
    """
    delivery = forward(outcome, source, destination)
    return delivery.delivered_to == ASN(int(intended_origin))
