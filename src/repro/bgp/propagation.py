"""BGP route propagation to convergence.

Fixpoint iteration of Gao–Rexford selection and export over the AS graph:
each round, every AS re-selects among the routes its neighbors currently
export to it; rounds repeat until nothing changes.  Gao–Rexford policies
guarantee a unique stable state on relationship-annotated graphs, so the
iteration terminates (a hard round cap guards pathological inputs).

The output is a :class:`RoutingOutcome`: every AS's RIB, ready for
data-plane forwarding queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ASN, Prefix
from .errors import AnnouncementError, TopologyError
from .policy import LocalPolicy, SelectionPolicy
from .routes import Announcement, Rib
from .topology import AsGraph

__all__ = ["Origination", "RoutingOutcome", "propagate"]

_MAX_ROUNDS = 1000


@dataclass(frozen=True)
class Origination:
    """One AS announcing one prefix into BGP."""

    prefix: Prefix
    origin: ASN

    @classmethod
    def parse(cls, prefix_text: str, origin: ASN | int) -> "Origination":
        return cls(Prefix.parse(prefix_text), ASN(int(origin)))


@dataclass
class RoutingOutcome:
    """The converged routing state: one RIB per AS."""

    ribs: dict[ASN, Rib] = field(default_factory=dict)
    rounds: int = 0

    def rib_of(self, asn: ASN | int) -> Rib:
        return self.ribs[ASN(int(asn))]

    def route_at(self, asn: ASN | int, prefix: Prefix) -> Announcement | None:
        """The exact-prefix route selected at *asn* (None if none)."""
        return self.rib_of(asn).route_for(prefix)

    def has_route(self, asn: ASN | int, prefix: Prefix) -> bool:
        return self.route_at(asn, prefix) is not None


def propagate(
    graph: AsGraph,
    originations: list[Origination],
    policies: dict[ASN, SelectionPolicy] | None = None,
    *,
    default_policy: SelectionPolicy | None = None,
) -> RoutingOutcome:
    """Run BGP to convergence.

    Parameters
    ----------
    graph:
        The AS topology.
    originations:
        Who announces what (victims, hijackers, everyone).
    policies:
        Per-AS selection policies; ASes not in the map (or all ASes, if
        the map is None) use *default_policy*, which itself defaults to
        plain Gao–Rexford with the RPKI off.
    """
    default_policy = default_policy or SelectionPolicy(LocalPolicy.RPKI_OFF)
    policies = policies or {}

    def policy_of(asn: ASN) -> SelectionPolicy:
        return policies.get(asn, default_policy)

    for origination in originations:
        if origination.origin not in graph:
            raise TopologyError(
                f"originating AS {origination.origin} not in topology"
            )

    # selected[asn][prefix] = best announcement at asn
    selected: dict[ASN, dict[Prefix, Announcement]] = {
        asn: {} for asn in graph.ases()
    }
    for origination in originations:
        own = Announcement.originate(origination.prefix, origination.origin)
        selected[origination.origin][origination.prefix] = own

    prefixes = sorted({o.prefix for o in originations})

    rounds = 0
    changed = True
    while changed:
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise AnnouncementError("BGP did not converge (round cap hit)")
        changed = False
        for asn in graph.ases():
            neighbors = graph.neighbors_of(asn)
            policy = policy_of(asn)

            def has_valid_covering_route(announcement,
                                         _selected=selected[asn],
                                         _policy=policy):
                """Cross-prefix context for SELECTIVE_DROP: does this AS
                currently hold a VALID route whose prefix covers the
                candidate's (and that is not the candidate itself)?"""
                from ..rp.states import RouteValidity

                for held in _selected.values():
                    if held.prefix != announcement.prefix and not (
                        held.prefix.covers(announcement.prefix)
                    ):
                        continue
                    if (
                        held.prefix == announcement.prefix
                        and held.origin == announcement.origin
                    ):
                        continue
                    if _policy.validity_of(held) is RouteValidity.VALID:
                        return True
                return False

            for prefix in prefixes:
                current = selected[asn].get(prefix)
                if current is not None and current.is_origination:
                    continue  # own prefix: never replaced
                candidates: list[Announcement] = []
                for neighbor, relationship in neighbors.items():
                    their_route = selected[neighbor].get(prefix)
                    if their_route is None:
                        continue
                    # Would the neighbor export this route to us?  The
                    # neighbor's view of us is the converse relationship.
                    neighbor_view_of_us = graph.relationship(neighbor, asn)
                    if not SelectionPolicy.exports_to(
                        their_route, neighbor_view_of_us
                    ):
                        continue
                    if asn == their_route.origin or asn in their_route.path:
                        continue  # loop prevention
                    candidates.append(
                        their_route.extended_to(asn, neighbor, relationship)
                    )
                best = policy.select(candidates, has_valid_covering_route)
                if best != current:
                    if best is None:
                        del selected[asn][prefix]
                    else:
                        selected[asn][prefix] = best
                    changed = True

    outcome = RoutingOutcome(rounds=rounds)
    for asn in graph.ases():
        rib = Rib()
        for announcement in selected[asn].values():
            rib.install(announcement)
        outcome.ribs[asn] = rib
    return outcome
