"""BGP announcements and RIBs.

An :class:`Announcement` is one AS's view of one path to one prefix; a
:class:`Rib` holds each AS's selected route per prefix, indexed for
longest-prefix-match forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import ASN, Prefix, PrefixMap
from .errors import AnnouncementError
from .topology import Relationship

__all__ = ["Announcement", "Rib"]


@dataclass(frozen=True)
class Announcement:
    """A route as held by some AS.

    ``path`` is the AS path from here to the origin: ``path[0]`` is the
    neighbor the route was learned from (the forwarding next hop) and
    ``path[-1]`` the origin.  An AS originating its own prefix holds an
    announcement with an empty path and ``learned_from=None``.
    """

    prefix: Prefix
    origin: ASN
    path: tuple[ASN, ...]
    learned_from: Relationship | None  # None = locally originated

    def __post_init__(self) -> None:
        if self.path:
            if self.path[-1] != self.origin:
                raise AnnouncementError(
                    f"path {self.path} does not end at origin {self.origin}"
                )
            if len(set(self.path)) != len(self.path):
                raise AnnouncementError(f"AS path contains a loop: {self.path}")
        elif self.learned_from is not None:
            raise AnnouncementError("an empty path must be locally originated")

    @classmethod
    def originate(cls, prefix: Prefix, origin: ASN | int) -> "Announcement":
        """The origin AS's own route for its prefix."""
        return cls(
            prefix=prefix, origin=ASN(int(origin)), path=(), learned_from=None
        )

    @property
    def is_origination(self) -> bool:
        return self.learned_from is None

    @property
    def next_hop(self) -> ASN | None:
        """The neighbor traffic is forwarded to (None at the origin)."""
        return self.path[0] if self.path else None

    @property
    def path_length(self) -> int:
        return len(self.path)

    def extended_to(
        self, receiver_asn: ASN, sender_asn: ASN, relationship: Relationship
    ) -> "Announcement":
        """The announcement as *receiver* would hold it after *sender*
        exports this route to it.

        *relationship* is the sender's role from the receiver's viewpoint.
        Loop prevention: raises if the receiver is already on the path.
        """
        if receiver_asn == self.origin or receiver_asn in self.path:
            raise AnnouncementError(f"{receiver_asn} already on path")
        return Announcement(
            prefix=self.prefix,
            origin=self.origin,
            path=(sender_asn,) + self.path,
            learned_from=relationship,
        )

    def __str__(self) -> str:
        path_text = " ".join(str(int(a)) for a in self.path) or "local"
        return f"{self.prefix} via [{path_text}] origin {self.origin}"


class Rib:
    """One AS's selected routes, indexed by prefix for LPM lookup.

    The flat views (:meth:`routes`, :meth:`prefixes`) are cached per
    mutation epoch — propagation over large topologies re-reads them
    far more often than it installs, so re-materializing a list per
    call was a measurable hot path at Internet scale.
    """

    def __init__(self) -> None:
        self._routes: PrefixMap[Announcement] = PrefixMap()
        self._routes_view: tuple[Announcement, ...] | None = None
        self._prefixes_view: tuple[Prefix, ...] | None = None

    def install(self, announcement: Announcement) -> None:
        self._routes.insert(announcement.prefix, announcement)
        self._routes_view = None
        self._prefixes_view = None

    def withdraw(self, prefix: Prefix) -> None:
        try:
            self._routes.remove(prefix)
        except KeyError:
            return
        self._routes_view = None
        self._prefixes_view = None

    def route_for(self, prefix: Prefix) -> Announcement | None:
        """The route for exactly this prefix, if any."""
        return self._routes.get(prefix)

    def lookup(self, prefix: Prefix) -> Announcement | None:
        """Longest-prefix-match: the most specific route covering *prefix*.

        This is the forwarding decision — and the reason subprefix hijacks
        work: "when a router is offered BGP routes for a prefix and its
        subprefix, it always chooses the subprefix route" (paper, Sec. 4).
        """
        hit = self._routes.longest_match(prefix)
        return hit[1] if hit else None

    def routes(self) -> tuple[Announcement, ...]:
        """Every selected route, in trie order (cached until mutation)."""
        if self._routes_view is None:
            self._routes_view = tuple(
                route for _, route in self._routes.items()
            )
        return self._routes_view

    def prefixes(self) -> tuple[Prefix, ...]:
        """Every routed prefix, in trie order (cached until mutation)."""
        if self._prefixes_view is None:
            self._prefixes_view = tuple(self._routes.keys())
        return self._prefixes_view

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes
