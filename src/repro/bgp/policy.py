"""Route selection and export policies.

Two layers compose here:

1. **Gao–Rexford economics** — prefer customer over peer over provider
   routes, break ties on path length, and export a route to a neighbor
   only if doing so makes economic sense (customer routes go to everyone;
   peer/provider routes go to customers only).

2. **RPKI local policy** — what a relying party does with route validity,
   the knob at the center of the paper's Table 6:

   - :attr:`LocalPolicy.RPKI_OFF` ignores the RPKI entirely;
   - :attr:`LocalPolicy.DROP_INVALID` "requires that a relying party
     never selects an invalid route";
   - :attr:`LocalPolicy.DEPREF_INVALID` "prefers valid routes over
     invalid routes" for the same prefix, but still uses an invalid route
     when it is the only one.
"""

from __future__ import annotations

import enum
from typing import Callable

from ..resources import ASN
from ..rp.states import Route, RouteValidity
from .routes import Announcement

__all__ = ["LocalPolicy", "SelectionPolicy", "ValidityOracle"]

# A function each relying party uses to classify a route.  Usually bound
# to a RelyingParty's VRP set; tests can pass arbitrary closures.
ValidityOracle = Callable[[Route], RouteValidity]


def _always_unknown(_route: Route) -> RouteValidity:
    return RouteValidity.UNKNOWN


class LocalPolicy(enum.Enum):
    """What an AS does with RPKI validation states (paper, Section 5).

    ``SELECTIVE_DROP`` is this reproduction's answer to the paper's open
    problem ("Can we develop better local policies for relying parties
    that overcome the difficult tradeoff?"): drop an invalid route only
    when a *valid* route covering the same destination is currently
    selected — i.e., only when dropping does not strand the destination.
    Under a subprefix hijack the victim's valid covering route exists, so
    the hijack is filtered; under a ROA whack no valid alternative
    exists, so the invalid route is still used.  Its residual weakness is
    the combined attack (whack the ROA *and* hijack simultaneously),
    which the benchmarks demonstrate.
    """

    RPKI_OFF = "rpki-off"
    DROP_INVALID = "drop-invalid"
    DEPREF_INVALID = "depref-invalid"
    SELECTIVE_DROP = "selective-drop"


class SelectionPolicy:
    """One AS's route selection behaviour.

    Parameters
    ----------
    local_policy:
        The RPKI stance (off / drop invalid / depref invalid).
    validity:
        The oracle classifying routes; defaults to everything-unknown
        (an AS with no RPKI data behaves like RPKI_OFF in practice).
    """

    def __init__(
        self,
        local_policy: LocalPolicy = LocalPolicy.RPKI_OFF,
        validity: ValidityOracle | None = None,
    ):
        self.local_policy = local_policy
        self.validity = validity or _always_unknown

    # -- validity -----------------------------------------------------------

    def validity_of(self, announcement: Announcement) -> RouteValidity:
        if self.local_policy is LocalPolicy.RPKI_OFF:
            return RouteValidity.UNKNOWN
        return self.validity(Route(announcement.prefix, announcement.origin))

    def usable(
        self,
        announcement: Announcement,
        has_valid_covering_route: Callable[[Announcement], bool] | None = None,
    ) -> bool:
        """Is this route even eligible for selection?

        *has_valid_covering_route* supplies cross-prefix context (does
        this AS currently hold a valid route covering the announcement's
        prefix?) — only :attr:`LocalPolicy.SELECTIVE_DROP` consults it.
        """
        if announcement.is_origination:
            return True
        if self.local_policy is LocalPolicy.DROP_INVALID:
            return self.validity_of(announcement) is not RouteValidity.INVALID
        if self.local_policy is LocalPolicy.SELECTIVE_DROP:
            if self.validity_of(announcement) is not RouteValidity.INVALID:
                return True
            if has_valid_covering_route is None:
                return True  # no context: fail open (never strand)
            return not has_valid_covering_route(announcement)
        return True

    # -- selection ----------------------------------------------------------------

    def preference_key(self, announcement: Announcement):
        """Sort key: smaller is better.

        Locally originated routes beat everything.  Under depref-invalid,
        validity ranks above the Gao–Rexford class (valid > unknown >
        invalid for the same prefix); otherwise economics lead.  Final
        tie-break on path content keeps selection deterministic.
        """
        if announcement.is_origination:
            return (0,)
        if self.local_policy in (
            LocalPolicy.DEPREF_INVALID, LocalPolicy.SELECTIVE_DROP
        ):
            # Selective drop still prefers valid routes among the usable.
            validity_rank = self.validity_of(announcement).rank
        else:
            validity_rank = 0
        relationship = announcement.learned_from
        assert relationship is not None
        return (
            1,
            validity_rank,
            relationship.preference,
            announcement.path_length,
            tuple(int(a) for a in announcement.path),
        )

    def select(
        self,
        candidates: list[Announcement],
        has_valid_covering_route: Callable[[Announcement], bool] | None = None,
    ) -> Announcement | None:
        """The best usable route among *candidates* (None if none usable)."""
        usable = [
            a for a in candidates
            if self.usable(a, has_valid_covering_route)
        ]
        if not usable:
            return None
        return min(usable, key=self.preference_key)

    # -- export -------------------------------------------------------------------

    @staticmethod
    def exports_to(
        announcement: Announcement, neighbor_relationship
    ) -> bool:
        """Gao–Rexford export rule.

        *neighbor_relationship* is the neighbor's role from the exporting
        AS's viewpoint.  Customer-learned (and self-originated) routes are
        exported to everyone; peer- and provider-learned routes only to
        customers.
        """
        from .topology import Relationship

        if announcement.is_origination:
            return True
        if announcement.learned_from is Relationship.CUSTOMER:
            return True
        return neighbor_relationship is Relationship.CUSTOMER


def policy_table(
    ases: list[ASN],
    default: LocalPolicy,
    validity: ValidityOracle | None = None,
    overrides: dict[ASN, LocalPolicy] | None = None,
) -> dict[ASN, SelectionPolicy]:
    """Build a per-AS policy map with a shared validity oracle."""
    overrides = overrides or {}
    return {
        asn: SelectionPolicy(overrides.get(asn, default), validity)
        for asn in ases
    }
