"""Random hierarchical AS topologies.

The paper's Table 6 claims are topology-generic; the sweep benchmarks
check them across randomly generated Internets instead of one hand-built
example.  The generator produces the standard three-tier structure of
measured AS graphs: a clique-ish core of tier-1s, a mid tier multi-homed
into it, and stubs multi-homed into the mid tier, with some peering at
the mid tier — all seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..resources import ASN
from .topology import AsGraph

__all__ = ["TopologyConfig", "generate_topology"]


@dataclass(frozen=True)
class TopologyConfig:
    """Shape parameters of the generated Internet."""

    seed: int = 0
    tier1_count: int = 4
    mid_count: int = 12
    stub_count: int = 40
    mid_providers: int = 2     # providers per mid-tier AS
    stub_providers: int = 2    # providers per stub AS
    mid_peering_prob: float = 0.2

    def __post_init__(self) -> None:
        if self.tier1_count < 1 or self.mid_count < 1 or self.stub_count < 1:
            raise ValueError("every tier must be non-empty")


@dataclass(frozen=True)
class GeneratedTopology:
    graph: AsGraph
    tier1: tuple[ASN, ...]
    mid: tuple[ASN, ...]
    stubs: tuple[ASN, ...]

    def random_stub_pair(self, rng: random.Random) -> tuple[ASN, ASN]:
        """Two distinct stubs (victim, attacker) for attack scenarios."""
        victim, attacker = rng.sample(list(self.stubs), 2)
        return victim, attacker


def generate_topology(config: TopologyConfig = TopologyConfig()) -> GeneratedTopology:
    """Build a random three-tier AS graph, deterministically from the seed.

    AS numbering: tier-1s from 100, mid tier from 1000, stubs from 10000.
    """
    rng = random.Random(config.seed)
    graph = AsGraph()

    tier1 = [ASN(100 + i) for i in range(config.tier1_count)]
    mid = [ASN(1000 + i) for i in range(config.mid_count)]
    stubs = [ASN(10000 + i) for i in range(config.stub_count)]

    # Tier-1 full mesh of peerings (the default-free core).
    for i, left in enumerate(tier1):
        for right in tier1[i + 1:]:
            graph.add_peering(left, right)

    # Mid tier: multi-homed into distinct tier-1s.
    for asn in mid:
        providers = rng.sample(tier1, min(config.mid_providers, len(tier1)))
        for provider in providers:
            graph.add_provider(customer=asn, provider=provider)

    # Some lateral peering at the mid tier.
    for i, left in enumerate(mid):
        for right in mid[i + 1:]:
            if rng.random() < config.mid_peering_prob:
                graph.add_peering(left, right)

    # Stubs: multi-homed into distinct mid-tier providers.
    for asn in stubs:
        providers = rng.sample(mid, min(config.stub_providers, len(mid)))
        for provider in providers:
            graph.add_provider(customer=asn, provider=provider)

    return GeneratedTopology(
        graph=graph, tier1=tuple(tier1), mid=tuple(mid), stubs=tuple(stubs)
    )
