"""Route validation states and the route value type.

"Each BGP route for prefix π and origin AS a is classified with one of
three validation states" (paper, Section 4; RFC 6811).  The enum ordering
encodes preference — valid routes are preferred over unknown over invalid
— which the depref-invalid BGP policy uses directly.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

from ..resources import ASN, Prefix

__all__ = ["RouteValidity", "Route"]


@functools.total_ordering
class RouteValidity(enum.Enum):
    """RFC 6811 route validation state, ordered best-first."""

    VALID = "valid"
    UNKNOWN = "unknown"
    INVALID = "invalid"

    @property
    def rank(self) -> int:
        """0 best (valid), 2 worst (invalid)."""
        return _RANKS[self]

    def __lt__(self, other: "RouteValidity") -> bool:
        if not isinstance(other, RouteValidity):
            return NotImplemented
        return self.rank < other.rank


_RANKS = {
    RouteValidity.VALID: 0,
    RouteValidity.UNKNOWN: 1,
    RouteValidity.INVALID: 2,
}


@dataclass(frozen=True, order=True)
class Route:
    """A BGP route as the paper defines it: an IP prefix and an origin AS."""

    prefix: Prefix
    origin: ASN

    @classmethod
    def parse(cls, prefix_text: str, origin: ASN | int) -> "Route":
        return cls(Prefix.parse(prefix_text), ASN(int(origin)))

    def __str__(self) -> str:
        return f"({self.prefix}, {self.origin})"
