"""Incremental validation: content-addressed memos and dirty-point reuse.

A relying party that keeps its cache complete (the property Side Effect 6
of the paper turns on) must revalidate it on every refresh — and a naive
validator pays for the *whole* repository every time: every object is
re-parsed and every RSA signature re-checked even when not a single byte
changed since the last epoch.  Production relying parties survive at
deployment scale because their steady-state cost is proportional to
*churn*, not repository size.  This module gives the reproduction the
same property, without changing a single validation verdict:

- :class:`VerificationMemo` — signature verification is a pure function
  of ``(key, message, signature)``.  Objects are content-addressed (their
  ``hash_hex`` covers payload *and* signature), so the verdict for
  ``(object hash, key fingerprint)`` can be cached across rounds and
  refreshes; a hit skips the modular exponentiation entirely.
- :class:`ParseMemo` — parsing is a pure function of the bytes.  Cached
  bytes that did not change parse to the same (immutable) object, so the
  memo returns the previously built object; parse *failures* are cached
  too (corrupt bytes stay corrupt).
- :class:`PointResult` / :class:`IncrementalState` — the per-publication-
  point unit of reuse.  A point's validation outcome is a pure function
  of (issuing certificate, strictness policy, the bytes of every cached
  copy, and which side of each time boundary ``now`` falls on).  The
  validator stores each point's local outcome with that exact
  fingerprint; a later run replays it verbatim when nothing it depends on
  moved, and recomputes it (a *dirty* point) otherwise.

Invalidation rules — the attack-safety contract
-----------------------------------------------

A cached point result is reused only when **all** of the following hold,
otherwise it is discarded and the point revalidated from bytes:

- ``content``: every cached copy (primary and mirrors) of the point has
  the same content digest as when the result was computed, and the same
  set of copies is present.  A whacked, shrunk, replaced, or newly
  published object — and any CRL or manifest change, which live in the
  same point — therefore always dirties the point.
- ``issuer``: the issuing CA certificate is byte-identical.  A shrunk or
  reissued parent dirties every point it issues for.
- ``time``: ``now`` is on the same side of every validity boundary
  (``not_before`` / ``not_after`` of each parseable object, including
  embedded EE certificates; CRL and manifest ``next_update``) that the
  original computation could have observed.  Clock movement past any
  expiry or staleness edge dirties the point.
- ``policy``: the manifest-strictness policy is unchanged.

Because reuse replays the exact issues, certificates, ROAs, and VRPs the
cold computation produced, an incremental run is byte-for-byte identical
to a cold :meth:`repro.rp.PathValidator.run` on the same cache — the
property ``tests/rp/test_incremental.py`` enforces after whacking,
revocation, and expiry events, and ``benchmarks/test_bench_incremental.py``
pins the zero-churn/zero-verification headline claim.

Memos are bounded (``max_entries``); when a memo fills up it is cleared
wholesale — crude, but deterministic and safe (a memo is only ever an
optimization).  All decisions are instrumented; see docs/performance.md
for how to read the metrics.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..crypto import RsaPublicKey, sha256_hex
from ..rpki.errors import ObjectFormatError
from ..rpki.ghostbusters import GhostbustersRecord
from ..rpki.objects import SignedObject
from ..rpki.parse import parse_object
from ..rpki.roa import Roa
from ..telemetry import MetricsRegistry, default_registry
from .vrp import VRP

__all__ = [
    "DEFAULT_MEMO_ENTRIES",
    "IncrementalState",
    "ParseMemo",
    "PointResult",
    "VerificationMemo",
    "time_signature",
]

# Generous for any simulated deployment; bounds long-running monitors.
DEFAULT_MEMO_ENTRIES = 65536

# Blobs above this size bypass the parse memo entirely: a decoder-bomb
# payload (repository/faults.nested_bomb) must not pin memory in — or
# poison — a cache that outlives the refresh that fetched it.  Far above
# any legitimate object in the simulation (hundreds of bytes), below the
# default bomb (~20 KiB).
DEFAULT_MAX_OBJECT_BYTES = 16 << 10


def time_signature(boundaries: tuple[int, ...], now: int) -> tuple[int, int]:
    """Which side of every boundary *now* falls on, as two counts.

    *boundaries* must be sorted.  Every time predicate the validator
    evaluates (``not_before <= now``, ``now <= not_after``,
    ``next_update < now``) flips only when ``now`` crosses one of the
    collected boundary values, so two instants with the same
    ``(how many boundaries are < now, how many are <= now)`` counts make
    every predicate evaluate identically — the cached verdicts still
    hold.  Works in both directions (clocks here can be rewound).
    """
    return (bisect_left(boundaries, now), bisect_right(boundaries, now))


class VerificationMemo:
    """Content-addressed cache of signature-verification verdicts.

    Keyed by ``(object hash, key fingerprint)``: the object's
    ``hash_hex`` covers its signed bytes *and* its signature, and the key
    fingerprint is the raw ``(modulus, exponent)`` pair, so a hit is
    exactly a re-verification of the same bytes under the same key — a
    pure recomputation, skipped.
    """

    def __init__(self, *, max_entries: int | None = DEFAULT_MEMO_ENTRIES):
        self._verdicts: dict[tuple[str, tuple[int, int]], bool] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def verify_object(self, obj: SignedObject, key: RsaPublicKey) -> bool:
        """Memoized ``obj.verify_signature(key)``."""
        memo_key = (obj.hash_hex, key.cache_key)
        verdict = self._verdicts.get(memo_key)
        if verdict is not None:
            self.hits += 1
            return verdict
        self.misses += 1
        verdict = obj.verify_signature(key)
        if self.max_entries is not None and len(self._verdicts) >= self.max_entries:
            self._verdicts.clear()
        self._verdicts[memo_key] = verdict
        return verdict

    def contains(self, obj: SignedObject, key: RsaPublicKey) -> bool:
        """True iff the verdict for (*obj*, *key*) is already cached.

        The dedup probe of :meth:`repro.parallel.ParallelEngine.precompute`
        — pure lookup, no hit/miss accounting (it is not memo traffic).
        """
        return (obj.hash_hex, key.cache_key) in self._verdicts

    def record(self, obj: SignedObject, key: RsaPublicKey, verdict: bool) -> None:
        """Seed the memo with a verdict computed elsewhere (a pool worker).

        Verification is a pure function of the memo key's content, so a
        verdict's origin is irrelevant; the bound is enforced the same
        way as on the compute path.
        """
        if self.max_entries is not None and len(self._verdicts) >= self.max_entries:
            self._verdicts.clear()
        self._verdicts[(obj.hash_hex, key.cache_key)] = verdict


class ParseMemo:
    """Content-addressed cache of :func:`repro.rpki.parse.parse_object`.

    Parsed objects are immutable (:class:`SignedObject` freezes payload
    access by convention and equality is by serialized bytes), so sharing
    one instance across runs is safe.  Failures are cached as the error
    message and re-raised as a fresh :class:`ObjectFormatError`.
    """

    def __init__(
        self,
        *,
        max_entries: int | None = DEFAULT_MEMO_ENTRIES,
        max_object_bytes: int | None = DEFAULT_MAX_OBJECT_BYTES,
    ):
        self._objects: dict[str, SignedObject | str] = {}
        self.max_entries = max_entries
        self.max_object_bytes = max_object_bytes
        self.hits = 0
        self.misses = 0
        self.oversized = 0

    def __len__(self) -> int:
        return len(self._objects)

    def parse(self, data: bytes) -> SignedObject:
        """Memoized parse; raises :class:`ObjectFormatError` like the real one."""
        if (
            self.max_object_bytes is not None
            and len(data) > self.max_object_bytes
        ):
            # Too big to be worth remembering (and possibly hostile):
            # parse without touching the memo at all.
            self.oversized += 1
            return parse_object(data)
        digest = sha256_hex(data)
        cached = self._objects.get(digest)
        if cached is not None:
            self.hits += 1
            if isinstance(cached, str):
                raise ObjectFormatError(cached)
            return cached
        self.misses += 1
        if self.max_entries is not None and len(self._objects) >= self.max_entries:
            self._objects.clear()
        try:
            obj = parse_object(data)
        except ObjectFormatError as exc:
            self._objects[digest] = str(exc)
            raise
        self._objects[digest] = obj
        return obj


@dataclass(frozen=True)
class PointResult:
    """One publication point's local validation outcome, replayable.

    *Local* means everything the point itself contributed to the
    :class:`~repro.rp.pathval.ValidationRun` — issues, accepted child CA
    certificates (in file order; the caller recurses into them), ROAs and
    their VRPs, the validated contact — but nothing from child subtrees.

    ``fingerprint`` is the exact reuse key (issuer certificate hash,
    strictness policy, per-copy content digests); ``boundaries`` and
    ``time_sig`` encode the time-window status; ``verify_count`` is how
    many signature checks the cold computation performed, credited to the
    skipped-verifications counter on every reuse.
    """

    fingerprint: tuple
    boundaries: tuple[int, ...]
    time_sig: tuple[int, int]
    selected_uri: str
    issues: tuple = ()
    children: tuple = ()
    roas: tuple[Roa, ...] = ()
    vrps: tuple[VRP, ...] = ()
    contact: GhostbustersRecord | None = None
    verify_count: int = 0


class IncrementalState:
    """Everything a validator carries across runs to validate incrementally.

    Hand one instance to :class:`~repro.rp.PathValidator` (or let
    :class:`~repro.rp.RelyingParty` build one with ``mode="incremental"``)
    and keep it alive across refreshes; dropping it is always safe and
    merely makes the next run cold.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        max_entries: int | None = DEFAULT_MEMO_ENTRIES,
    ):
        self.verify_memo = VerificationMemo(max_entries=max_entries)
        self.parse_memo = ParseMemo(max_entries=max_entries)
        # Point cache keyed by the issuing CA's subject key id: one CA,
        # one publication point (mirrors are copies inside one result).
        self.points: dict[str, PointResult] = {}
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_verify_memo = self.metrics.counter(
            "repro_incremental_verify_memo_total",
            help="verification-memo lookups, by result",
            labelnames=("result",),
        )
        self._m_parse_memo = self.metrics.counter(
            "repro_incremental_parse_memo_total",
            help="parse-memo lookups, by result",
            labelnames=("result",),
        )
        self._m_points = self.metrics.counter(
            "repro_incremental_points_total",
            help="publication points handled per run, reused vs revalidated",
            labelnames=("outcome",),
        )
        self._m_invalidations = self.metrics.counter(
            "repro_incremental_invalidations_total",
            help="why a cached point result could not be reused",
            labelnames=("reason",),
        )
        self._m_skipped = self.metrics.counter(
            "repro_incremental_skipped_verifications_total",
            help="signature checks avoided by replaying cached point results",
        )
        self._m_entries = self.metrics.gauge(
            "repro_incremental_memo_entries",
            help="entries currently held, by memo",
            labelnames=("memo",),
        )

    # -- memo fronts (instrumented) -----------------------------------------

    def verify_object(self, obj: SignedObject, key: RsaPublicKey) -> bool:
        before = self.verify_memo.hits
        verdict = self.verify_memo.verify_object(obj, key)
        hit = self.verify_memo.hits > before
        self._m_verify_memo.inc(result="hit" if hit else "miss")
        return verdict

    def parse(self, data: bytes) -> SignedObject:
        before = self.parse_memo.hits
        try:
            return self.parse_memo.parse(data)
        finally:
            hit = self.parse_memo.hits > before
            self._m_parse_memo.inc(result="hit" if hit else "miss")

    # -- the dirty-point check ----------------------------------------------

    def lookup(self, ca_key_id: str, fingerprint: tuple, now: int) -> PointResult | None:
        """The cached result for this CA's point, if still valid at *now*.

        Returns None — after counting why — when the point is dirty.
        """
        entry = self.points.get(ca_key_id)
        if entry is None:
            self._m_invalidations.inc(reason="new")
            return None
        if entry.fingerprint != fingerprint:
            # Order mirrors the fingerprint layout in PathValidator:
            # (issuer hash, policy, copies).
            if entry.fingerprint[0] != fingerprint[0]:
                reason = "issuer"
            elif entry.fingerprint[1] != fingerprint[1]:
                reason = "policy"
            else:
                reason = "content"
            self._m_invalidations.inc(reason=reason)
            return None
        if time_signature(entry.boundaries, now) != entry.time_sig:
            self._m_invalidations.inc(reason="time")
            return None
        return entry

    def store(self, ca_key_id: str, entry: PointResult, now: int | None = None) -> None:
        """Cache *entry* for *ca_key_id* (*now* is accepted for provider-
        interface compatibility; the entry's own time signature already
        encodes everything this state needs about the instant)."""
        self.points[ca_key_id] = entry
        self._update_gauges()

    def count_reused(self, entry: PointResult) -> None:
        self._m_points.inc(outcome="reused")
        if entry.verify_count:
            self._m_skipped.inc(entry.verify_count)

    def count_validated(self) -> None:
        self._m_points.inc(outcome="validated")

    def _update_gauges(self) -> None:
        self._m_entries.set(len(self.verify_memo), memo="verify")
        self._m_entries.set(len(self.parse_memo), memo="parse")

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        """Forget everything; the next run is fully cold."""
        self.verify_memo = VerificationMemo(max_entries=self.verify_memo.max_entries)
        self.parse_memo = ParseMemo(max_entries=self.parse_memo.max_entries)
        self.points.clear()
        self._update_gauges()
