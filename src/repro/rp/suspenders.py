"""A Suspenders-style fail-safe against unauthorized whacking.

The paper points to "Suspenders: A Fail-safe Mechanism for the RPKI"
(Kent & Mandelberg, IETF draft, its reference [25]) as a concurrent step
toward hardening the RPKI against the very manipulations Sections 3-4
describe.  The idea, reproduced here in relying-party form:

    A relying party remembers the ROAs it has previously validated.  When
    a ROA *disappears* without corroboration — no CRL entry for its EE
    certificate, no natural expiry — the disappearance is treated as a
    potential manipulation and the old ROA's payload is kept in force for
    a configurable grace period.

This directly blunts every stealthy whack in the taxonomy (deletion,
overwrite-shrink, make-before-break): the victim's routes stay valid for
the grace window, buying time for the out-of-band dispute the paper says
targets otherwise lack.  Transparent revocations (CRL-backed) and natural
expiries still take effect immediately — the fail-safe defers only to
*evidence*.

The cost is the flip side the paper predicts for any such mechanism: a
legitimate-but-sloppy removal (no CRL entry) also lingers for the grace
period, so the fail-safe trades attack robustness against responsiveness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rpki.ca import CRL_FILE
from ..rpki.crl import Crl
from ..rpki.errors import ObjectFormatError
from ..rpki.parse import parse_object
from .origin import validate
from .relying_party import RefreshReport, RelyingParty
from .states import Route, RouteValidity
from .vrp import VRP, VrpSet

__all__ = ["RetainedVrp", "SuspendersRelyingParty"]


@dataclass
class RetainedVrp:
    """One VRP kept alive past its ROA's disappearance."""

    vrp: VRP
    retained_since: int
    expires_at: int          # min(roa.not_after, retained_since + grace)
    home_point: str
    ee_serial: int           # for late CRL corroboration checks
    reason: str              # why the disappearance looked uncorroborated

    def active(self, now: int) -> bool:
        return now <= self.expires_at


class SuspendersRelyingParty:
    """Wraps a :class:`RelyingParty` with the retain-on-whack fail-safe.

    Use exactly like a relying party: :meth:`refresh` then
    :meth:`classify`.  The effective VRP set is the natural validation
    output plus any retained VRPs still inside their grace window.
    """

    def __init__(self, rp: RelyingParty, clock, *, grace_seconds: int):
        if grace_seconds <= 0:
            raise ValueError(f"grace period must be positive: {grace_seconds}")
        self.rp = rp
        self.grace_seconds = grace_seconds
        self._clock = clock
        self._retained: dict[VRP, RetainedVrp] = {}
        # The previous run's evidence: vrp -> (ee_serial, not_after, point).
        self._provenance: dict[VRP, tuple[int, int, str]] = {}

    # -- refresh cycle -------------------------------------------------------

    def refresh(self) -> RefreshReport:
        report = self.rp.refresh()
        now = self._clock.now
        natural = report.run.vrps
        revoked_by_point = self._revocations_in_cache()

        # Which previously known VRPs vanished this cycle?
        for vrp, (ee_serial, not_after, point) in self._provenance.items():
            if vrp in natural or vrp in self._retained:
                continue
            if not_after < now:
                continue  # natural expiry: honored immediately
            if ee_serial in revoked_by_point.get(point, frozenset()):
                continue  # transparent revocation: honored immediately
            self._retained[vrp] = RetainedVrp(
                vrp=vrp,
                retained_since=now,
                expires_at=min(not_after, now + self.grace_seconds),
                home_point=point,
                ee_serial=ee_serial,
                reason="disappeared without CRL corroboration",
            )

        # Prune: reappeared naturally, since-corroborated, or grace over.
        for vrp in list(self._retained):
            entry = self._retained[vrp]
            if vrp in natural or not entry.active(now):
                del self._retained[vrp]
            elif entry.ee_serial in revoked_by_point.get(
                entry.home_point, frozenset()
            ):
                del self._retained[vrp]  # authority followed up properly

        # Update provenance from this run's validated ROAs.
        self._provenance = {}
        run = report.run
        for roa in run.validated_roas:
            point = run.roa_locations.get(roa.hash_hex, "")
            for roa_prefix in roa.prefixes:
                vrp = VRP(
                    roa_prefix.prefix,
                    roa_prefix.effective_max_length,
                    roa.asn,
                )
                self._provenance[vrp] = (
                    roa.ee_cert.serial, roa.not_after, point
                )
        return report

    def _revocations_in_cache(self) -> dict[str, frozenset[int]]:
        """Per publication point, the serials its cached CRL revokes."""
        out: dict[str, frozenset[int]] = {}
        for uri, files in self.rp.cache.all_files().items():
            data = files.get(CRL_FILE)
            if data is None:
                continue
            try:
                crl = parse_object(data)
            except ObjectFormatError:
                continue
            if isinstance(crl, Crl):
                out[uri] = crl.revoked_serials
        return out

    # -- classification surface -------------------------------------------------

    @property
    def retained(self) -> list[RetainedVrp]:
        """Currently active retentions (the fail-safe's working set)."""
        now = self._clock.now
        return [r for r in self._retained.values() if r.active(now)]

    @property
    def vrps(self) -> VrpSet:
        """Natural VRPs plus retained ones still in grace."""
        now = self._clock.now
        effective = VrpSet(self.rp.vrps)
        for entry in self._retained.values():
            if entry.active(now):
                effective.add(entry.vrp)
        return effective

    def classify(self, route: Route) -> RouteValidity:
        return validate(route.prefix, route.origin, self.vrps).state

    def classify_parts(self, prefix_text: str, origin: int) -> RouteValidity:
        return self.classify(Route.parse(prefix_text, origin))
