"""RFC 6811 route origin validation.

The three-state classifier of the paper's Section 4, verbatim:

- **Valid**: there is a valid *matching* ROA — matching origin AS, a
  prefix that covers the route's prefix, and a maxLength no shorter than
  the route's prefix length.
- **Unknown**: there is no valid *covering* ROA at all.
- **Invalid**: neither — some ROA covers the prefix, but none matches.

The subtlety the paper builds Side Effects 5 and 6 on lives entirely in
the gap between "covering" and "matching": removing a matching ROA while a
covering one remains flips a route from valid to *invalid*, not unknown,
and adding a covering ROA flips unknown routes to invalid.

:func:`validate` is the single entry point — it returns the state *and*
the evidence (which VRPs covered, which matched), and both the BGP policy
layer and the ``repro.api`` query plane call it.  The older spellings
``classify`` / ``explain`` / ``classify_parts`` remain as thin aliases
that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..resources import ASN, Prefix
from .states import Route, RouteValidity
from .vrp import VRP, VrpSet

__all__ = [
    "OriginValidationOutcome",
    "classify",
    "classify_parts",
    "explain",
    "validate",
]


@dataclass(frozen=True)
class OriginValidationOutcome:
    """A classification together with the evidence behind it."""

    route: Route
    state: RouteValidity
    matching: tuple[VRP, ...]
    covering: tuple[VRP, ...]

    def __str__(self) -> str:
        return f"{self.route} -> {self.state.value}"


def validate(
    prefix: Prefix | str, origin: ASN | int, vrps: VrpSet
) -> OriginValidationOutcome:
    """RFC 6811 origin validation of one announcement, with evidence.

    The unified entry point: one trie walk collects every *covering* VRP
    (any origin) and every *matching* VRP (covers, within maxLength, same
    AS), and the state falls out of the two lists — matching present →
    valid; covering but no match → invalid; neither → unknown.  The
    route-validity matrices (Figure 5), the BGP policy layer, and the
    ``repro.api`` query plane all go through here, so there is exactly
    one implementation of the covering/matching gap the paper's Side
    Effects 5 and 6 turn on.
    """
    if not isinstance(prefix, Prefix):
        prefix = Prefix.parse(prefix)
    route = Route(prefix, ASN(int(origin)))
    covering: list[VRP] = []
    matching: list[VRP] = []
    for vrp in vrps.covering(prefix):
        covering.append(vrp)
        if prefix.length <= vrp.max_length and vrp.asn == route.origin:
            matching.append(vrp)
    if matching:
        state = RouteValidity.VALID
    elif covering:
        state = RouteValidity.INVALID
    else:
        state = RouteValidity.UNKNOWN
    return OriginValidationOutcome(
        route=route,
        state=state,
        matching=tuple(matching),
        covering=tuple(covering),
    )


def _deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"repro.rp.origin.{old}() is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def classify(route: Route, vrps: VrpSet) -> RouteValidity:
    """Deprecated alias: ``validate(route.prefix, route.origin, vrps).state``."""
    _deprecated("classify", "validate(prefix, origin, vrps).state")
    return validate(route.prefix, route.origin, vrps).state


def explain(route: Route, vrps: VrpSet) -> OriginValidationOutcome:
    """Deprecated alias: ``validate(route.prefix, route.origin, vrps)``."""
    _deprecated("explain", "validate(prefix, origin, vrps)")
    return validate(route.prefix, route.origin, vrps)


def classify_parts(prefix: Prefix, origin: ASN | int, vrps: VrpSet) -> RouteValidity:
    """Deprecated alias: ``validate(prefix, origin, vrps).state``."""
    _deprecated("classify_parts", "validate(prefix, origin, vrps).state")
    return validate(prefix, origin, vrps).state
