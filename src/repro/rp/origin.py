"""RFC 6811 route origin validation.

The three-state classifier of the paper's Section 4, verbatim:

- **Valid**: there is a valid *matching* ROA — matching origin AS, a
  prefix that covers the route's prefix, and a maxLength no shorter than
  the route's prefix length.
- **Unknown**: there is no valid *covering* ROA at all.
- **Invalid**: neither — some ROA covers the prefix, but none matches.

The subtlety the paper builds Side Effects 5 and 6 on lives entirely in
the gap between "covering" and "matching": removing a matching ROA while a
covering one remains flips a route from valid to *invalid*, not unknown,
and adding a covering ROA flips unknown routes to invalid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import ASN, Prefix
from .states import Route, RouteValidity
from .vrp import VRP, VrpSet

__all__ = ["classify", "explain", "OriginValidationOutcome"]


def classify(route: Route, vrps: VrpSet) -> RouteValidity:
    """Classify one BGP route against a set of validated ROA payloads."""
    covered = False
    for vrp in vrps.covering(route.prefix):
        covered = True
        if route.prefix.length <= vrp.max_length and vrp.asn == route.origin:
            return RouteValidity.VALID
    if covered:
        return RouteValidity.INVALID
    return RouteValidity.UNKNOWN


@dataclass(frozen=True)
class OriginValidationOutcome:
    """A classification together with the evidence behind it."""

    route: Route
    state: RouteValidity
    matching: tuple[VRP, ...]
    covering: tuple[VRP, ...]

    def __str__(self) -> str:
        return f"{self.route} -> {self.state.value}"


def explain(route: Route, vrps: VrpSet) -> OriginValidationOutcome:
    """Like :func:`classify`, but returns the full evidence.

    Used by the route-validity matrices (Figure 5) and the monitor, which
    need to show *which* covering ROA made a route invalid.
    """
    covering: list[VRP] = []
    matching: list[VRP] = []
    for vrp in vrps.covering(route.prefix):
        covering.append(vrp)
        if vrp.matches(route.prefix, route.origin):
            matching.append(vrp)
    if matching:
        state = RouteValidity.VALID
    elif covering:
        state = RouteValidity.INVALID
    else:
        state = RouteValidity.UNKNOWN
    return OriginValidationOutcome(
        route=route,
        state=state,
        matching=tuple(matching),
        covering=tuple(covering),
    )


def classify_parts(prefix: Prefix, origin: ASN | int, vrps: VrpSet) -> RouteValidity:
    """Convenience overload taking the route's parts."""
    return classify(Route(prefix, ASN(int(origin))), vrps)
