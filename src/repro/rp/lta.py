"""Local trust-anchor overrides (the paper's reference [7]).

"RPKI Local Trust Anchor Use Cases" (Bush, IETF draft) describes relying
parties that locally override the global RPKI: pinning bindings they know
to be right, and distrusting bindings they believe to be the product of
manipulation.  This is the relying party's unilateral answer to the
paper's flipped threat model — if an authority above you can whack your
ROA, *your own routers* can be configured to keep believing it.

The model here is deliberately small and composable: a
:class:`LocalOverrides` value transforms a validated VRP set — pins add
VRPs, filters remove them, and forced states short-circuit classification
for specific (prefix, origin) pairs — and
:func:`classify_with_overrides` applies the whole thing to one route.
Overrides are local policy: they protect (or endanger) only the relying
party that configures them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ASN, Prefix
from .origin import validate
from .states import Route, RouteValidity
from .vrp import VRP, VrpSet

__all__ = ["LocalOverrides", "classify_with_overrides"]


@dataclass
class LocalOverrides:
    """An operator's local amendments to the validated ROA set.

    - ``pinned``: VRPs always present, whatever the RPKI currently says —
      the anti-whacking pin.
    - ``filtered``: VRPs always removed — local distrust of a binding
      believed to be manipulated (e.g. a hijacker's suspicious new ROA).
    - ``forced``: final states for exact (prefix, origin) routes,
      consulted before any VRP logic.
    """

    pinned: list[VRP] = field(default_factory=list)
    filtered: list[VRP] = field(default_factory=list)
    forced: dict[Route, RouteValidity] = field(default_factory=dict)

    # -- fluent construction ------------------------------------------------

    def pin(self, prefix_text: str, asn: int) -> "LocalOverrides":
        """Pin a VRP (paper notation: ``pin("63.174.16.0/20-24", 17054)``)."""
        self.pinned.append(VRP.parse(prefix_text, asn))
        return self

    def filter(self, prefix_text: str, asn: int) -> "LocalOverrides":
        """Locally drop a VRP."""
        self.filtered.append(VRP.parse(prefix_text, asn))
        return self

    def force(
        self, prefix_text: str, asn: int, state: RouteValidity
    ) -> "LocalOverrides":
        """Force the final state of one exact route."""
        self.forced[Route(Prefix.parse(prefix_text), ASN(asn))] = state
        return self

    # -- application ----------------------------------------------------------

    def apply(self, vrps: VrpSet) -> VrpSet:
        """The effective VRP set under these overrides."""
        filtered = set(self.filtered)
        effective = VrpSet(v for v in vrps if v not in filtered)
        for vrp in self.pinned:
            effective.add(vrp)
        return effective

    @property
    def is_empty(self) -> bool:
        return not (self.pinned or self.filtered or self.forced)

    # -- SLURM-style serialization ---------------------------------------------

    def to_dict(self) -> dict:
        """A SLURM-shaped plain-data form (cf. RFC 8416, which later
        standardized exactly this kind of local filter/assertion file:
        ``prefixFilters`` drop VRPs, ``prefixAssertions`` add them)."""
        return {
            "slurmVersion": 1,
            "validationOutputFilters": {
                "prefixFilters": [
                    {"prefix": str(v.prefix), "asn": int(v.asn),
                     "maxPrefixLength": v.max_length}
                    for v in self.filtered
                ],
            },
            "locallyAddedAssertions": {
                "prefixAssertions": [
                    {"prefix": str(v.prefix), "asn": int(v.asn),
                     "maxPrefixLength": v.max_length}
                    for v in self.pinned
                ],
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocalOverrides":
        """Rebuild from :meth:`to_dict` output (forced states are local
        router configuration, not part of the interchange format)."""
        overrides = cls()
        filters = data.get("validationOutputFilters", {})
        for item in filters.get("prefixFilters", []):
            overrides.filtered.append(VRP(
                Prefix.parse(item["prefix"]),
                item["maxPrefixLength"],
                ASN(item["asn"]),
            ))
        assertions = data.get("locallyAddedAssertions", {})
        for item in assertions.get("prefixAssertions", []):
            overrides.pinned.append(VRP(
                Prefix.parse(item["prefix"]),
                item["maxPrefixLength"],
                ASN(item["asn"]),
            ))
        return overrides


def classify_with_overrides(
    route: Route, vrps: VrpSet, overrides: LocalOverrides
) -> RouteValidity:
    """RFC 6811 classification under local overrides.

    Forced states win outright; otherwise classification runs against the
    pinned-and-filtered VRP set.
    """
    forced = overrides.forced.get(route)
    if forced is not None:
        return forced
    return validate(route.prefix, route.origin, overrides.apply(vrps)).state
