"""Certificate-path validation: from cached bytes to validated ROAs.

Implements the relying party's core algorithm (RFC 6487/6482/6486
semantics): starting from trust anchors, walk the certificate hierarchy
through the cached publication points, checking at every step

- signatures (issuer key signs child object),
- validity windows against simulated time,
- revocation against the issuer's CRL,
- resource coverage (child resources ⊆ issuing certificate's resources —
  the least-privilege rule whose *shrinking* is the whacking attack), and
- manifest consistency (with an explicit strictness policy, because the
  RFCs "do not specify what action should be taken" on mismatch — paper,
  Section 4).

Everything that fails produces a :class:`ValidationIssue` instead of an
exception: for a relying party, broken data is an input condition, and the
paper's entire Section 4 is about what those conditions do to routing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..crypto import sha256_hex
from ..repository.uri import RsyncUri
from ..telemetry import MetricsRegistry, default_registry
from ..rpki.ca import CRL_FILE, MANIFEST_FILE
from ..rpki.cert import ResourceCertificate
from ..rpki.crl import Crl
from ..rpki.errors import ObjectFormatError
from ..rpki.manifest import Manifest
from ..rpki.parse import parse_object
from ..rpki.ghostbusters import GhostbustersRecord
from ..rpki.roa import Roa
from .vrp import VRP, VrpSet

__all__ = [
    "Severity",
    "ValidationIssue",
    "ValidationRun",
    "PathValidator",
]

_MAX_DEPTH = 32


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating cached RPKI data."""

    severity: Severity
    point_uri: str
    file_name: str
    code: str
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.severity.value}] {self.point_uri}{self.file_name}: "
            f"{self.code}: {self.message}"
        )


@dataclass
class ValidationRun:
    """The output of one full path-validation pass."""

    vrps: VrpSet = field(default_factory=VrpSet)
    validated_cas: list[ResourceCertificate] = field(default_factory=list)
    validated_roas: list[Roa] = field(default_factory=list)
    issues: list[ValidationIssue] = field(default_factory=list)
    # Where each validated ROA was found: roa.hash_hex -> point URI.
    # Suspenders uses this to check revocation corroboration later.
    roa_locations: dict[str, str] = field(default_factory=dict)
    # Validated Ghostbusters contact per publication point URI.
    contacts: dict[str, GhostbustersRecord] = field(default_factory=dict)

    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    def has_issue(self, code: str) -> bool:
        return any(issue.code == code for issue in self.issues)


class PathValidator:
    """Validates a cache snapshot into a :class:`ValidationRun`.

    Parameters
    ----------
    trust_anchors:
        The self-signed certificates configured out of band (the TAL
        analog).  These are *axioms*: their resources are accepted as-is.
    strict_manifests:
        If True, a publication point whose manifest is missing, invalid,
        stale, or inconsistent with the fetched files is discarded whole.
        If False (default, matching deployed RP behaviour circa the
        paper), individual objects are still used and issues are recorded
        as warnings — the lenient end of the "what to do about incomplete
        information?" tradeoff.
    """

    def __init__(
        self,
        trust_anchors: list[ResourceCertificate],
        *,
        strict_manifests: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        if not trust_anchors:
            raise ValueError("at least one trust anchor is required")
        self.trust_anchors = list(trust_anchors)
        self.strict_manifests = strict_manifests
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_runs = self.metrics.counter(
            "repro_validation_runs_total", help="full path-validation passes"
        )
        self._m_objects = self.metrics.counter(
            "repro_validation_objects_total",
            help="objects accepted by path validation, by type",
            labelnames=("type",),
        )
        self._m_issues = self.metrics.counter(
            "repro_validation_issues_total",
            help="validation issues recorded, by severity",
            labelnames=("severity",),
        )

    def run(self, cache_files: dict[str, dict[str, bytes]], now: int) -> ValidationRun:
        """Validate everything reachable from the trust anchors.

        *cache_files* maps publication point URI → file name → bytes
        (the shape of :meth:`repro.repository.LocalCache.all_files`).
        """
        result = ValidationRun()
        seen_cas: set[str] = set()
        for anchor in self.trust_anchors:
            if not anchor.is_self_signed or not anchor.verify_signature(
                anchor.subject_key
            ):
                result.issues.append(ValidationIssue(
                    Severity.ERROR, anchor.sia, "", "ta-bad-signature",
                    f"trust anchor {anchor.subject!r} is not properly self-signed",
                ))
                continue
            if not anchor.is_current(now):
                result.issues.append(ValidationIssue(
                    Severity.ERROR, anchor.sia, "", "ta-expired",
                    f"trust anchor {anchor.subject!r} not valid at t={now}",
                ))
                continue
            result.validated_cas.append(anchor)
            self._descend(anchor, cache_files, now, result, seen_cas, depth=0)
        self._m_runs.inc()
        if result.validated_cas:
            self._m_objects.inc(len(result.validated_cas), type="ca")
        if result.validated_roas:
            self._m_objects.inc(len(result.validated_roas), type="roa")
        if result.contacts:
            self._m_objects.inc(len(result.contacts), type="ghostbusters")
        for severity in Severity:
            count = sum(1 for i in result.issues if i.severity is severity)
            if count:
                self._m_issues.inc(count, severity=severity.value)
        return result

    # -- internals ----------------------------------------------------------

    def _descend(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        now: int,
        result: ValidationRun,
        seen_cas: set[str],
        depth: int,
    ) -> None:
        """Validate the publication point of one accepted CA certificate."""
        if depth > _MAX_DEPTH:
            result.issues.append(ValidationIssue(
                Severity.ERROR, ca_cert.sia, "", "depth-exceeded",
                "certificate chain deeper than the validator allows",
            ))
            return
        if ca_cert.subject_key_id in seen_cas:
            return  # loop guard (malicious self-recertification)
        seen_cas.add(ca_cert.subject_key_id)

        # Multiple-publication-points support: among the primary SIA and
        # its mirrors, prefer the first *manifest-consistent* cached copy —
        # the copies are supposed to be identical, so a corrupted or stale
        # primary is simply outvoted by a clean mirror.
        point_uri, files = self._select_point_copy(ca_cert, cache_files, now)
        if files is None:
            result.issues.append(ValidationIssue(
                Severity.ERROR, _normalize(ca_cert.sia), "", "point-missing",
                f"publication point of {ca_cert.subject!r} absent from cache",
            ))
            return
        if point_uri != _normalize(ca_cert.sia):
            result.issues.append(ValidationIssue(
                Severity.WARNING, _normalize(ca_cert.sia), "", "using-mirror",
                f"primary copy unusable or absent; using mirror {point_uri}",
            ))
        ca_key = ca_cert.subject_key

        crl = self._load_crl(point_uri, files, ca_cert, now, result)
        usable = self._apply_manifest(point_uri, files, ca_cert, now, result)
        if usable is None:
            return  # strict mode discarded the point

        for file_name in sorted(usable):
            if file_name in (CRL_FILE, MANIFEST_FILE):
                continue
            data = usable[file_name]
            try:
                obj = parse_object(data)
            except ObjectFormatError as exc:
                result.issues.append(ValidationIssue(
                    Severity.ERROR, point_uri, file_name, "parse-failed", str(exc),
                ))
                continue
            if isinstance(obj, ResourceCertificate):
                child = self._check_child_cert(
                    point_uri, file_name, obj, ca_cert, crl, now, result
                )
                if child is not None:
                    result.validated_cas.append(child)
                    self._descend(child, cache_files, now, result, seen_cas,
                                  depth + 1)
            elif isinstance(obj, Roa):
                self._check_roa(point_uri, file_name, obj, ca_cert, crl, now,
                                result)
            elif isinstance(obj, GhostbustersRecord):
                self._check_ghostbusters(point_uri, file_name, obj, ca_cert,
                                         crl, now, result)
            else:
                result.issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, file_name, "unexpected-type",
                    f"unexpected object type {obj.TYPE!r} in publication point",
                ))

    def _select_point_copy(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        now: int,
    ) -> tuple[str, dict[str, bytes] | None]:
        """Pick which cached copy of a CA's publication point to use.

        Candidates are the primary SIA then each mirror.  A copy is
        *consistent* when its manifest parses, verifies under the CA key,
        is current, and every listed file is present with a matching
        hash.  The first consistent copy wins; if none is consistent, the
        first cached copy (primary preferred) is returned so its problems
        surface as ordinary validation issues.
        """
        candidates = [_normalize(u) for u in ca_cert.all_publication_uris]
        first_present: tuple[str, dict[str, bytes]] | None = None
        for uri in candidates:
            files = cache_files.get(uri)
            if files is None:
                continue
            if first_present is None:
                first_present = (uri, files)
            if self._copy_is_consistent(files, ca_cert, now):
                return uri, files
        if first_present is not None:
            return first_present
        return _normalize(ca_cert.sia), None

    @staticmethod
    def _copy_is_consistent(
        files: dict[str, bytes], ca_cert: ResourceCertificate, now: int
    ) -> bool:
        data = files.get(MANIFEST_FILE)
        if data is None:
            return False
        try:
            manifest = parse_object(data)
        except ObjectFormatError:
            return False
        if not isinstance(manifest, Manifest):
            return False
        if not manifest.verify_signature(ca_cert.subject_key):
            return False
        if manifest.next_update < now:
            return False
        on_disk = {name for name in files if name != MANIFEST_FILE}
        if manifest.file_names != on_disk:
            return False
        return all(
            sha256_hex(files[name]) == manifest.hash_of(name)
            for name in on_disk
        )

    def _load_crl(self, point_uri, files, ca_cert, now, result) -> Crl | None:
        data = files.get(CRL_FILE)
        if data is None:
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, CRL_FILE, "crl-missing",
                "no CRL at publication point; revocation cannot be checked",
            ))
            return None
        try:
            crl = parse_object(data)
        except ObjectFormatError as exc:
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, CRL_FILE, "crl-parse-failed", str(exc),
            ))
            return None
        if not isinstance(crl, Crl) or not crl.verify_signature(
            ca_cert.subject_key
        ):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, CRL_FILE, "crl-bad-signature",
                "CRL does not verify under the CA key",
            ))
            return None
        if crl.next_update < now:
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, CRL_FILE, "crl-stale",
                f"CRL nextUpdate {crl.next_update} is in the past (now {now})",
            ))
        return crl

    def _apply_manifest(
        self, point_uri, files, ca_cert, now, result
    ) -> dict[str, bytes] | None:
        """Check manifest consistency; returns the usable file dict.

        Returns None if strict mode discards the whole point.
        """
        strict_fail: str | None = None
        data = files.get(MANIFEST_FILE)
        manifest: Manifest | None = None
        if data is None:
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, MANIFEST_FILE, "manifest-missing",
                "no manifest; cannot detect missing or extra objects",
            ))
            strict_fail = "manifest-missing"
        else:
            try:
                parsed = parse_object(data)
                manifest = parsed if isinstance(parsed, Manifest) else None
            except ObjectFormatError:
                manifest = None
            if manifest is None or not manifest.verify_signature(
                ca_cert.subject_key
            ):
                result.issues.append(ValidationIssue(
                    Severity.ERROR, point_uri, MANIFEST_FILE,
                    "manifest-bad", "manifest unparsable or badly signed",
                ))
                manifest = None
                strict_fail = "manifest-bad"

        usable = {k: v for k, v in files.items() if k != MANIFEST_FILE}
        if manifest is not None:
            if manifest.next_update < now:
                result.issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, MANIFEST_FILE, "manifest-stale",
                    f"manifest nextUpdate {manifest.next_update} < now {now}",
                ))
                strict_fail = strict_fail or "manifest-stale"
            on_disk = set(usable)
            listed = manifest.file_names
            for missing in sorted(listed - on_disk):
                result.issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, missing, "manifest-file-missing",
                    "file listed in manifest but absent from fetch",
                ))
                strict_fail = strict_fail or "manifest-file-missing"
            for extra in sorted(on_disk - listed):
                result.issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, extra, "manifest-file-extra",
                    "file present but not listed in manifest",
                ))
            for file_name in sorted(on_disk & listed):
                if sha256_hex(usable[file_name]) != manifest.hash_of(file_name):
                    result.issues.append(ValidationIssue(
                        Severity.ERROR, point_uri, file_name, "hash-mismatch",
                        "file bytes do not match the manifest hash",
                    ))
                    del usable[file_name]
                    strict_fail = strict_fail or "hash-mismatch"

        if self.strict_manifests and strict_fail is not None:
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, MANIFEST_FILE, "point-discarded",
                f"strict mode discarded the point ({strict_fail})",
            ))
            return None
        return usable

    def _check_child_cert(
        self, point_uri, file_name, cert, ca_cert, crl, now, result
    ) -> ResourceCertificate | None:
        if cert.issuer_key_id != ca_cert.subject_key_id:
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "wrong-issuer",
                "certificate names a different issuer than this point's CA",
            ))
            return None
        if not cert.verify_signature(ca_cert.subject_key):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "bad-signature",
                f"certificate for {cert.subject!r} fails signature check",
            ))
            return None
        if not cert.is_current(now):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "expired",
                f"certificate for {cert.subject!r} not valid at t={now}",
            ))
            return None
        if crl is not None and crl.is_revoked(cert.serial):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "revoked",
                f"certificate serial {cert.serial} is on the issuer's CRL",
            ))
            return None
        if not ca_cert.ip_resources.covers(cert.ip_resources):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "overclaim",
                f"certificate for {cert.subject!r} claims resources its "
                "issuer does not hold",
            ))
            return None
        return cert

    def _check_roa(self, point_uri, file_name, roa, ca_cert, crl, now, result):
        ee = roa.ee_cert
        if ee.issuer_key_id != ca_cert.subject_key_id:
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "wrong-issuer",
                "ROA's EE certificate names a different issuer",
            ))
            return
        if not ee.verify_signature(ca_cert.subject_key):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "ee-bad-signature",
                "embedded EE certificate fails signature check",
            ))
            return
        if not ee.is_current(now) or not roa.is_current(now):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "expired",
                f"ROA {roa.describe()} not valid at t={now}",
            ))
            return
        if crl is not None and crl.is_revoked(ee.serial):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "revoked",
                f"ROA {roa.describe()} EE serial {ee.serial} is revoked",
            ))
            return
        if not ca_cert.ip_resources.covers(ee.ip_resources):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "overclaim",
                f"ROA {roa.describe()} EE claims resources the CA lacks",
            ))
            return
        if not roa.verify_signature(ee.subject_key):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "roa-bad-signature",
                "ROA fails signature check under its EE key",
            ))
            return
        if not ee.ip_resources.covers(roa.resources()):
            result.issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "roa-overclaim",
                "ROA names prefixes outside its EE certificate",
            ))
            return
        result.validated_roas.append(roa)
        result.roa_locations[roa.hash_hex] = point_uri
        for roa_prefix in roa.prefixes:
            result.vrps.add(VRP(
                prefix=roa_prefix.prefix,
                max_length=roa_prefix.effective_max_length,
                asn=roa.asn,
            ))

    def _check_ghostbusters(
        self, point_uri, file_name, record, ca_cert, crl, now, result
    ):
        """Validate a contact record: same EE discipline as a ROA."""
        ee = record.ee_cert
        if (
            ee.issuer_key_id != ca_cert.subject_key_id
            or not ee.verify_signature(ca_cert.subject_key)
            or not record.verify_signature(ee.subject_key)
        ):
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-bad-signature",
                "ghostbusters record fails its signature chain",
            ))
            return
        if not ee.is_current(now) or not record.is_current(now):
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-expired",
                "ghostbusters record expired",
            ))
            return
        if crl is not None and crl.is_revoked(ee.serial):
            result.issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-revoked",
                "ghostbusters record EE certificate revoked",
            ))
            return
        result.contacts[point_uri] = record


def _normalize(sia: str) -> str:
    """Normalize an SIA string to the cache's canonical URI form."""
    return str(RsyncUri.parse(sia))
