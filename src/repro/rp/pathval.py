"""Certificate-path validation: from cached bytes to validated ROAs.

Implements the relying party's core algorithm (RFC 6487/6482/6486
semantics): starting from trust anchors, walk the certificate hierarchy
through the cached publication points, checking at every step

- signatures (issuer key signs child object),
- validity windows against simulated time,
- revocation against the issuer's CRL,
- resource coverage (child resources ⊆ issuing certificate's resources —
  the least-privilege rule whose *shrinking* is the whacking attack), and
- manifest consistency (with an explicit strictness policy, because the
  RFCs "do not specify what action should be taken" on mismatch — paper,
  Section 4).

Everything that fails produces a :class:`ValidationIssue` instead of an
exception: for a relying party, broken data is an input condition, and the
paper's entire Section 4 is about what those conditions do to routing.

Validation is organized around *publication points*: each accepted CA
certificate leads to one point, whose local outcome (issues, accepted
children, ROAs, VRPs, contact) is computed as a unit and only then
recursed into.  That unit is exactly what :mod:`repro.rp.incremental`
caches — hand the validator an :class:`~repro.rp.incremental.IncrementalState`
and unchanged points are replayed from the previous run instead of being
re-parsed and re-verified.  With no state attached the validator is the
plain cold algorithm with identical behavior to earlier revisions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..crypto import RsaPublicKey, sha256_hex
from ..repository.cache import point_digest
from ..repository.uri import RsyncUri
from ..telemetry import MetricsRegistry, default_registry
from ..rpki.ca import CRL_FILE, MANIFEST_FILE
from ..rpki.cert import ResourceCertificate
from ..rpki.crl import Crl
from ..rpki.errors import ObjectFormatError
from ..rpki.manifest import Manifest
from ..rpki.parse import parse_object
from ..rpki.ghostbusters import GhostbustersRecord
from ..rpki.objects import SignedObject
from ..rpki.roa import Roa
from .incremental import IncrementalState, PointResult, time_signature
from .vrp import VRP, VrpSet

__all__ = [
    "Severity",
    "ValidationIssue",
    "ValidationRun",
    "PathValidator",
]

_MAX_DEPTH = 32


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating cached RPKI data."""

    severity: Severity
    point_uri: str
    file_name: str
    code: str
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.severity.value}] {self.point_uri}{self.file_name}: "
            f"{self.code}: {self.message}"
        )


@dataclass
class ValidationRun:
    """The output of one full path-validation pass."""

    vrps: VrpSet = field(default_factory=VrpSet)
    validated_cas: list[ResourceCertificate] = field(default_factory=list)
    validated_roas: list[Roa] = field(default_factory=list)
    issues: list[ValidationIssue] = field(default_factory=list)
    # Where each validated ROA was found: roa.hash_hex -> point URI.
    # Suspenders uses this to check revocation corroboration later.
    roa_locations: dict[str, str] = field(default_factory=dict)
    # Validated Ghostbusters contact per publication point URI.
    contacts: dict[str, GhostbustersRecord] = field(default_factory=dict)
    # Count of validated ROAs — equals len(validated_roas) except under
    # a lean (streaming) validator, which counts without retaining the
    # parsed Roa objects.
    roa_count: int = 0

    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    def has_issue(self, code: str) -> bool:
        return any(issue.code == code for issue in self.issues)


class PathValidator:
    """Validates a cache snapshot into a :class:`ValidationRun`.

    Parameters
    ----------
    trust_anchors:
        The self-signed certificates configured out of band (the TAL
        analog).  These are *axioms*: their resources are accepted as-is.
    strict_manifests:
        If True, a publication point whose manifest is missing, invalid,
        stale, or inconsistent with the fetched files is discarded whole.
        If False (default, matching deployed RP behaviour circa the
        paper), individual objects are still used and issues are recorded
        as warnings — the lenient end of the "what to do about incomplete
        information?" tradeoff.
    incremental:
        An :class:`~repro.rp.incremental.IncrementalState` to carry memos
        and per-point results across runs.  ``None`` (default) validates
        cold every time.
    parallel:
        A :class:`~repro.parallel.ParallelEngine` acting as the *reuse
        provider* instead: run-scoped memos (prefilled by the engine's
        pool pre-pass) plus same-instant point replay.  Mutually
        exclusive with ``incremental`` — when both features are wanted,
        the engine shares the incremental state's memos and this
        validator sees only ``incremental`` (see
        :class:`~repro.rp.RelyingParty`).
    collect_objects:
        If False (the *lean* streaming mode), validated ROA objects and
        their locations are counted but not retained on the
        :class:`ValidationRun` — only VRPs, CA certificates, issues and
        contacts survive the pass.  At Internet scale this is the
        difference between O(point) and O(deployment) peak memory for a
        serial refresh; layers that need the objects themselves
        (Suspenders corroboration, the monitor) keep the default True.

    Both providers expose the same protocol (``verify_object`` /
    ``parse`` / ``lookup`` / ``store`` / ``count_reused`` /
    ``count_validated``); replayed and freshly computed points take the
    identical code path, so any provider's output is byte-for-byte equal
    to the cold run's.
    """

    def __init__(
        self,
        trust_anchors: list[ResourceCertificate],
        *,
        strict_manifests: bool = False,
        metrics: MetricsRegistry | None = None,
        incremental: IncrementalState | None = None,
        parallel=None,
        collect_objects: bool = True,
    ):
        if not trust_anchors:
            raise ValueError("at least one trust anchor is required")
        if incremental is not None and parallel is not None:
            raise ValueError(
                "incremental and parallel are mutually exclusive; share the "
                "incremental state's memos with the engine instead"
            )
        self.trust_anchors = list(trust_anchors)
        self.strict_manifests = strict_manifests
        self.collect_objects = collect_objects
        self.incremental = incremental
        self.parallel = parallel
        self._provider = incremental if incremental is not None else parallel
        self._verify_calls = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_runs = self.metrics.counter(
            "repro_validation_runs_total", help="full path-validation passes"
        )
        self._m_objects = self.metrics.counter(
            "repro_validation_objects_total",
            help="objects accepted by path validation, by type",
            labelnames=("type",),
        )
        self._m_issues = self.metrics.counter(
            "repro_validation_issues_total",
            help="validation issues recorded, by severity",
            labelnames=("severity",),
        )

    def run(
        self,
        cache_files: dict[str, dict[str, bytes]],
        now: int,
        *,
        digests: dict[str, str] | None = None,
    ) -> ValidationRun:
        """Validate everything reachable from the trust anchors.

        *cache_files* maps publication point URI → file name → bytes
        (the shape of :meth:`repro.repository.LocalCache.all_files`).
        *digests* optionally maps point URI → content digest (the shape
        of :meth:`repro.repository.LocalCache.digests`); used only in
        incremental mode, and computed from the bytes when absent.
        """
        if self._provider is not None and digests is None:
            digests = {
                uri: point_digest(files) for uri, files in cache_files.items()
            }
        result = ValidationRun()
        seen_cas: set[str] = set()
        for anchor in self.trust_anchors:
            if not anchor.is_self_signed or not self._verify(
                anchor, anchor.subject_key
            ):
                result.issues.append(ValidationIssue(
                    Severity.ERROR, anchor.sia, "", "ta-bad-signature",
                    f"trust anchor {anchor.subject!r} is not properly self-signed",
                ))
                continue
            if not anchor.is_current(now):
                result.issues.append(ValidationIssue(
                    Severity.ERROR, anchor.sia, "", "ta-expired",
                    f"trust anchor {anchor.subject!r} not valid at t={now}",
                ))
                continue
            result.validated_cas.append(anchor)
            self._descend(anchor, cache_files, digests, now, result, seen_cas,
                          depth=0)
        self._m_runs.inc()
        if result.validated_cas:
            self._m_objects.inc(len(result.validated_cas), type="ca")
        if result.roa_count:
            self._m_objects.inc(result.roa_count, type="roa")
        if result.contacts:
            self._m_objects.inc(len(result.contacts), type="ghostbusters")
        for severity in Severity:
            count = sum(1 for i in result.issues if i.severity is severity)
            if count:
                self._m_issues.inc(count, severity=severity.value)
        return result

    # -- memo-aware primitives ----------------------------------------------

    def _verify(self, obj: SignedObject, key: RsaPublicKey) -> bool:
        """Signature check, via the reuse provider's memo when attached."""
        self._verify_calls += 1
        if self._provider is not None:
            return self._provider.verify_object(obj, key)
        return obj.verify_signature(key)

    def _parse(self, data: bytes) -> SignedObject:
        """Parse, via the reuse provider's memo when attached."""
        if self._provider is not None:
            return self._provider.parse(data)
        return parse_object(data)

    # -- internals ----------------------------------------------------------

    def _descend(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        digests: dict[str, str] | None,
        now: int,
        result: ValidationRun,
        seen_cas: set[str],
        depth: int,
    ) -> None:
        """Validate the publication point of one accepted CA certificate."""
        if depth > _MAX_DEPTH:
            result.issues.append(ValidationIssue(
                Severity.ERROR, ca_cert.sia, "", "depth-exceeded",
                "certificate chain deeper than the validator allows",
            ))
            return
        if ca_cert.subject_key_id in seen_cas:
            return  # loop guard (malicious self-recertification)
        seen_cas.add(ca_cert.subject_key_id)

        provider = self._provider
        entry: PointResult | None = None
        fingerprint: tuple = ()
        if provider is not None:
            fingerprint = self._point_fingerprint(ca_cert, cache_files, digests)
            entry = provider.lookup(ca_cert.subject_key_id, fingerprint, now)
            if entry is not None:
                provider.count_reused(entry)
        if entry is None:
            try:
                entry = self._validate_point(
                    ca_cert, cache_files, now, fingerprint
                )
            except Exception as exc:  # containment: one bad point ≠ dead run
                entry = self._quarantined_point(ca_cert, fingerprint, now, exc)
            else:
                if provider is not None:
                    provider.count_validated()
                    provider.store(ca_cert.subject_key_id, entry, now)

        # Apply the point's local outcome, then recurse into the subtree.
        # Replayed and freshly computed results take the identical path, so
        # warm output is byte-for-byte equal to cold output by construction.
        result.issues.extend(entry.issues)
        if entry.contact is not None:
            result.contacts[entry.selected_uri] = entry.contact
        result.roa_count += len(entry.roas)
        if self.collect_objects:
            for roa in entry.roas:
                result.validated_roas.append(roa)
                result.roa_locations[roa.hash_hex] = entry.selected_uri
        result.vrps.extend(entry.vrps)
        for child in entry.children:
            result.validated_cas.append(child)
            self._descend(child, cache_files, digests, now, result, seen_cas,
                          depth + 1)

    def _point_fingerprint(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        digests: dict[str, str] | None,
    ) -> tuple:
        """The exact reuse key for one CA's publication point.

        Covers the issuing certificate (byte hash — a reissued or shrunk
        parent always dirties the point, and the issuer CRL lives *in*
        the point so content covers it), the strictness policy, and the
        content digest of every cached copy, primary and mirrors alike.
        """
        digests = digests or {}
        copies = tuple(
            (uri, digests.get(uri, ""))
            for uri in (_normalize(u) for u in ca_cert.all_publication_uris)
            if uri in cache_files
        )
        return (ca_cert.hash_hex, self.strict_manifests, copies)

    def _validate_point(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        now: int,
        fingerprint: tuple,
    ) -> PointResult:
        """Cold-validate one publication point into a replayable result."""
        issues: list[ValidationIssue] = []
        verify_before = self._verify_calls

        point_uri, files = self._select_point_copy(ca_cert, cache_files, now)
        if files is None:
            issues.append(ValidationIssue(
                Severity.ERROR, _normalize(ca_cert.sia), "", "point-missing",
                f"publication point of {ca_cert.subject!r} absent from cache",
            ))
            return self._finish_point(
                ca_cert, cache_files, None, now, fingerprint, point_uri,
                issues, [], [], [], None, verify_before,
            )
        if point_uri != _normalize(ca_cert.sia):
            issues.append(ValidationIssue(
                Severity.WARNING, _normalize(ca_cert.sia), "", "using-mirror",
                f"primary copy unusable or absent; using mirror {point_uri}",
            ))

        crl = self._load_crl(point_uri, files, ca_cert, now, issues)
        usable = self._apply_manifest(point_uri, files, ca_cert, now, issues)
        children: list[ResourceCertificate] = []
        roas: list[Roa] = []
        vrps: list[VRP] = []
        contact: GhostbustersRecord | None = None
        if usable is not None:  # strict mode may discard the point whole
            for file_name in sorted(usable):
                if file_name in (CRL_FILE, MANIFEST_FILE):
                    continue
                data = usable[file_name]
                try:
                    obj = self._parse(data)
                except ObjectFormatError as exc:
                    issues.append(ValidationIssue(
                        Severity.ERROR, point_uri, file_name, "parse-failed",
                        str(exc),
                    ))
                    continue
                except Exception as exc:
                    # Anything past the format layer (decoder recursion
                    # blow-ups, pathological payloads) quarantines just
                    # this object; siblings keep validating.
                    issues.append(ValidationIssue(
                        Severity.ERROR, point_uri, file_name,
                        "object-quarantined",
                        f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                try:
                    if isinstance(obj, ResourceCertificate):
                        child = self._check_child_cert(
                            point_uri, file_name, obj, ca_cert, crl, now, issues
                        )
                        if child is not None:
                            children.append(child)
                    elif isinstance(obj, Roa):
                        roa = self._check_roa(
                            point_uri, file_name, obj, ca_cert, crl, now, issues
                        )
                        if roa is not None:
                            roas.append(roa)
                            for roa_prefix in roa.prefixes:
                                vrps.append(VRP(
                                    prefix=roa_prefix.prefix,
                                    max_length=roa_prefix.effective_max_length,
                                    asn=roa.asn,
                                ))
                    elif isinstance(obj, GhostbustersRecord):
                        record = self._check_ghostbusters(
                            point_uri, file_name, obj, ca_cert, crl, now, issues
                        )
                        if record is not None:
                            contact = record
                    else:
                        issues.append(ValidationIssue(
                            Severity.WARNING, point_uri, file_name,
                            "unexpected-type",
                            f"unexpected object type {obj.TYPE!r} in publication point",
                        ))
                except Exception as exc:
                    issues.append(ValidationIssue(
                        Severity.ERROR, point_uri, file_name,
                        "object-quarantined",
                        f"{type(exc).__name__}: {exc}",
                    ))
                    continue
        return self._finish_point(
            ca_cert, cache_files, files, now, fingerprint, point_uri,
            issues, children, roas, vrps, contact, verify_before,
        )

    def _finish_point(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        selected_files: dict[str, bytes] | None,
        now: int,
        fingerprint: tuple,
        point_uri: str,
        issues: list[ValidationIssue],
        children: list[ResourceCertificate],
        roas: list[Roa],
        vrps: list[VRP],
        contact: GhostbustersRecord | None,
        verify_before: int,
    ) -> PointResult:
        """Package a point's outcome, with its time-reuse signature."""
        if self.incremental is not None:
            boundaries = self._collect_boundaries(
                ca_cert, cache_files, selected_files
            )
        else:
            boundaries = ()  # never consulted without an IncrementalState
        return PointResult(
            fingerprint=fingerprint,
            boundaries=boundaries,
            time_sig=time_signature(boundaries, now),
            selected_uri=point_uri,
            issues=tuple(issues),
            children=tuple(children),
            roas=tuple(roas),
            vrps=tuple(vrps),
            contact=contact,
            verify_count=self._verify_calls - verify_before,
        )

    def _quarantined_point(
        self,
        ca_cert: ResourceCertificate,
        fingerprint: tuple,
        now: int,
        exc: Exception,
    ) -> PointResult:
        """A replayable empty result for a point whose validation raised.

        Deliberately *not* stored in any reuse provider: the next run
        retries the point from scratch instead of replaying the failure.
        """
        issue = ValidationIssue(
            Severity.ERROR, _normalize(ca_cert.sia), "", "point-quarantined",
            f"validation raised {type(exc).__name__}: {exc}",
        )
        return PointResult(
            fingerprint=fingerprint,
            boundaries=(),
            time_sig=time_signature((), now),
            selected_uri=_normalize(ca_cert.sia),
            issues=(issue,),
            children=(),
            roas=(),
            vrps=(),
            contact=None,
            verify_count=0,
        )

    def _collect_boundaries(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        selected_files: dict[str, bytes] | None,
    ) -> tuple[int, ...]:
        """Every time boundary this point's verdicts could depend on.

        Each time predicate the point evaluates — ``not_before <= now``,
        ``now <= not_after``, ``next_update < now`` (``next_update``
        aliases the payload ``not_after`` for CRLs and manifests) — flips
        only at a validity edge of some parseable object: every object of
        the selected copy, the EE certificates embedded in ROAs and
        Ghostbusters records, and the manifests of *other* cached copies
        (their staleness steers :meth:`_select_point_copy`).  A superset
        is collected — extra boundaries cause at worst a spurious
        revalidation, never a stale reuse.  Unparseable bytes contribute
        nothing: their outcome cannot depend on time, and any byte change
        is caught by the content fingerprint instead.
        """
        bounds: set[int] = set()

        def add(obj: SignedObject) -> None:
            bounds.add(obj.not_before)
            bounds.add(obj.not_after)

        for uri in (_normalize(u) for u in ca_cert.all_publication_uris):
            files = cache_files.get(uri)
            if files is None or files is selected_files:
                continue
            data = files.get(MANIFEST_FILE)
            if data is None:
                continue
            try:
                mirror_manifest = self._parse(data)
            except Exception:
                continue  # unparseable bytes contribute no boundaries
            if isinstance(mirror_manifest, Manifest):
                add(mirror_manifest)
        for data in (selected_files or {}).values():
            try:
                obj = self._parse(data)
            except Exception:
                continue  # unparseable bytes contribute no boundaries
            add(obj)
            ee = getattr(obj, "ee_cert", None)
            if ee is not None:
                add(ee)
        return tuple(sorted(bounds))

    def _select_point_copy(
        self,
        ca_cert: ResourceCertificate,
        cache_files: dict[str, dict[str, bytes]],
        now: int,
    ) -> tuple[str, dict[str, bytes] | None]:
        """Pick which cached copy of a CA's publication point to use.

        Candidates are the primary SIA then each mirror.  A copy is
        *consistent* when its manifest parses, verifies under the CA key,
        is current, and every listed file is present with a matching
        hash.  The first consistent copy wins; if none is consistent, the
        first cached copy (primary preferred) is returned so its problems
        surface as ordinary validation issues.
        """
        candidates = [_normalize(u) for u in ca_cert.all_publication_uris]
        first_present: tuple[str, dict[str, bytes]] | None = None
        for uri in candidates:
            files = cache_files.get(uri)
            if files is None:
                continue
            if first_present is None:
                first_present = (uri, files)
            if self._copy_is_consistent(files, ca_cert, now):
                return uri, files
        if first_present is not None:
            return first_present
        return _normalize(ca_cert.sia), None

    def _copy_is_consistent(
        self, files: dict[str, bytes], ca_cert: ResourceCertificate, now: int
    ) -> bool:
        data = files.get(MANIFEST_FILE)
        if data is None:
            return False
        try:
            manifest = self._parse(data)
        except Exception:
            return False  # an unparseable manifest is an inconsistent copy
        if not isinstance(manifest, Manifest):
            return False
        if not self._verify(manifest, ca_cert.subject_key):
            return False
        if manifest.next_update < now:
            return False
        on_disk = {name for name in files if name != MANIFEST_FILE}
        if manifest.file_names != on_disk:
            return False
        return all(
            sha256_hex(files[name]) == manifest.hash_of(name)
            for name in on_disk
        )

    def _load_crl(self, point_uri, files, ca_cert, now, issues) -> Crl | None:
        data = files.get(CRL_FILE)
        if data is None:
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, CRL_FILE, "crl-missing",
                "no CRL at publication point; revocation cannot be checked",
            ))
            return None
        try:
            crl = self._parse(data)
        except Exception as exc:
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, CRL_FILE, "crl-parse-failed", str(exc),
            ))
            return None
        if not isinstance(crl, Crl) or not self._verify(
            crl, ca_cert.subject_key
        ):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, CRL_FILE, "crl-bad-signature",
                "CRL does not verify under the CA key",
            ))
            return None
        if crl.next_update < now:
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, CRL_FILE, "crl-stale",
                f"CRL nextUpdate {crl.next_update} is in the past (now {now})",
            ))
        return crl

    def _apply_manifest(
        self, point_uri, files, ca_cert, now, issues
    ) -> dict[str, bytes] | None:
        """Check manifest consistency; returns the usable file dict.

        Returns None if strict mode discards the whole point.
        """
        strict_fail: str | None = None
        data = files.get(MANIFEST_FILE)
        manifest: Manifest | None = None
        if data is None:
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, MANIFEST_FILE, "manifest-missing",
                "no manifest; cannot detect missing or extra objects",
            ))
            strict_fail = "manifest-missing"
        else:
            try:
                parsed = self._parse(data)
                manifest = parsed if isinstance(parsed, Manifest) else None
            except Exception:
                manifest = None
            if manifest is None or not self._verify(
                manifest, ca_cert.subject_key
            ):
                issues.append(ValidationIssue(
                    Severity.ERROR, point_uri, MANIFEST_FILE,
                    "manifest-bad", "manifest unparsable or badly signed",
                ))
                manifest = None
                strict_fail = "manifest-bad"

        usable = {k: v for k, v in files.items() if k != MANIFEST_FILE}
        if manifest is not None:
            if manifest.next_update < now:
                issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, MANIFEST_FILE, "manifest-stale",
                    f"manifest nextUpdate {manifest.next_update} < now {now}",
                ))
                strict_fail = strict_fail or "manifest-stale"
            on_disk = set(usable)
            listed = manifest.file_names
            for missing in sorted(listed - on_disk):
                issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, missing, "manifest-file-missing",
                    "file listed in manifest but absent from fetch",
                ))
                strict_fail = strict_fail or "manifest-file-missing"
            for extra in sorted(on_disk - listed):
                issues.append(ValidationIssue(
                    Severity.WARNING, point_uri, extra, "manifest-file-extra",
                    "file present but not listed in manifest",
                ))
            for file_name in sorted(on_disk & listed):
                if sha256_hex(usable[file_name]) != manifest.hash_of(file_name):
                    issues.append(ValidationIssue(
                        Severity.ERROR, point_uri, file_name, "hash-mismatch",
                        "file bytes do not match the manifest hash",
                    ))
                    del usable[file_name]
                    strict_fail = strict_fail or "hash-mismatch"

        if self.strict_manifests and strict_fail is not None:
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, MANIFEST_FILE, "point-discarded",
                f"strict mode discarded the point ({strict_fail})",
            ))
            return None
        return usable

    def _check_child_cert(
        self, point_uri, file_name, cert, ca_cert, crl, now, issues
    ) -> ResourceCertificate | None:
        if cert.issuer_key_id != ca_cert.subject_key_id:
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "wrong-issuer",
                "certificate names a different issuer than this point's CA",
            ))
            return None
        if not self._verify(cert, ca_cert.subject_key):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "bad-signature",
                f"certificate for {cert.subject!r} fails signature check",
            ))
            return None
        if not cert.is_current(now):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "expired",
                f"certificate for {cert.subject!r} not valid at t={now}",
            ))
            return None
        if crl is not None and crl.is_revoked(cert.serial):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "revoked",
                f"certificate serial {cert.serial} is on the issuer's CRL",
            ))
            return None
        if not ca_cert.ip_resources.covers(cert.ip_resources):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "overclaim",
                f"certificate for {cert.subject!r} claims resources its "
                "issuer does not hold",
            ))
            return None
        return cert

    def _check_roa(
        self, point_uri, file_name, roa, ca_cert, crl, now, issues
    ) -> Roa | None:
        ee = roa.ee_cert
        if ee.issuer_key_id != ca_cert.subject_key_id:
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "wrong-issuer",
                "ROA's EE certificate names a different issuer",
            ))
            return None
        if not self._verify(ee, ca_cert.subject_key):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "ee-bad-signature",
                "embedded EE certificate fails signature check",
            ))
            return None
        if not ee.is_current(now) or not roa.is_current(now):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "expired",
                f"ROA {roa.describe()} not valid at t={now}",
            ))
            return None
        if crl is not None and crl.is_revoked(ee.serial):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "revoked",
                f"ROA {roa.describe()} EE serial {ee.serial} is revoked",
            ))
            return None
        if not ca_cert.ip_resources.covers(ee.ip_resources):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "overclaim",
                f"ROA {roa.describe()} EE claims resources the CA lacks",
            ))
            return None
        if not self._verify(roa, ee.subject_key):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "roa-bad-signature",
                "ROA fails signature check under its EE key",
            ))
            return None
        if not ee.ip_resources.covers(roa.resources()):
            issues.append(ValidationIssue(
                Severity.ERROR, point_uri, file_name, "roa-overclaim",
                "ROA names prefixes outside its EE certificate",
            ))
            return None
        return roa

    def _check_ghostbusters(
        self, point_uri, file_name, record, ca_cert, crl, now, issues
    ) -> GhostbustersRecord | None:
        """Validate a contact record: same EE discipline as a ROA."""
        ee = record.ee_cert
        if (
            ee.issuer_key_id != ca_cert.subject_key_id
            or not self._verify(ee, ca_cert.subject_key)
            or not self._verify(record, ee.subject_key)
        ):
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-bad-signature",
                "ghostbusters record fails its signature chain",
            ))
            return None
        if not ee.is_current(now) or not record.is_current(now):
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-expired",
                "ghostbusters record expired",
            ))
            return None
        if crl is not None and crl.is_revoked(ee.serial):
            issues.append(ValidationIssue(
                Severity.WARNING, point_uri, file_name, "gbr-revoked",
                "ghostbusters record EE certificate revoked",
            ))
            return None
        return record


def _normalize(sia: str) -> str:
    """Normalize an SIA string to the cache's canonical URI form."""
    return str(RsyncUri.parse(sia))
