"""The relying party: fetch, cache, validate, classify.

Ties the pipeline together the way RFC 6480 describes a relying party
operating: periodically synchronize the distributed repositories into a
local cache, run path validation over the cache, and use the resulting
VRPs to classify BGP routes.

Discovery is top-down: the trust anchors' publication points are fetched
first, validation of what arrived reveals child SIA pointers, those are
fetched next, and so on until no new points appear.  A point that cannot
be fetched (unreachable, faulted) leaves whatever the cache already had —
or nothing, which is exactly the "missing information" condition whose
consequences Section 4 of the paper analyzes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..parallel import ParallelEngine, WorkerPool
from ..repository.cache import CacheFreshness, LocalCache
from ..repository.fetch import Fetcher, FetchResult, FetchStatus
from ..repository.scheduler import FetchScheduler, SchedulerConfig
from ..repository.uri import RsyncUri
from ..rpki.cert import ResourceCertificate
from ..simtime import Clock
from ..telemetry import MetricsRegistry, default_registry
from .incremental import IncrementalState
from .origin import OriginValidationOutcome, validate
from .pathval import PathValidator, ValidationRun
from .states import Route, RouteValidity
from .vrp import VrpSet

__all__ = ["ENGINE_MODES", "RelyingParty", "RefreshReport",
           "DegradationReport"]

# The coherent engine-selection knob: which validation strategy a
# relying party runs.  ``workers`` sizes the process pool where one is
# used (always for "parallel"; optionally composed with "incremental").
ENGINE_MODES = ("serial", "incremental", "parallel")

# Issue codes that mean "this object's bytes were rejected and the object
# was excluded while its siblings kept validating" — the containment
# outcomes a DegradationReport aggregates.
_QUARANTINE_CODES = frozenset({
    "parse-failed", "object-quarantined", "crl-parse-failed", "hash-mismatch",
})


@dataclass
class DegradationReport:
    """What one refresh survived: the containment ledger.

    The invariant this records is *one bad object never aborts the
    refresh* — every damaged input ends up listed here instead of raised.
    Affected subtrees keep serving last-known-good VRPs through the
    cache's stale-grace machinery; everything else is unaffected.
    """

    # (point URI, file name, issue code) per excluded object.
    quarantined_objects: list[tuple[str, str, str]] = field(
        default_factory=list
    )
    # (point URI, reason) per point that failed to fetch or whose
    # validation was contained whole.
    degraded_points: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined_objects and not self.degraded_points

    def summary(self) -> str:
        return (
            f"{len(self.quarantined_objects)} object(s) quarantined, "
            f"{len(self.degraded_points)} point(s) degraded"
        )


@dataclass
class RefreshReport:
    """Everything one refresh cycle did."""

    run: ValidationRun
    fetches: list[FetchResult] = field(default_factory=list)
    rounds: int = 0
    budget_exhausted: bool = False
    skipped: list[str] = field(default_factory=list)
    freshness: dict[str, CacheFreshness] = field(default_factory=dict)
    degradation: DegradationReport = field(default_factory=DegradationReport)
    # Points the fetch scheduler deferred to stale-cache grace this cycle
    # (always empty without a ``schedule=`` config).
    deferred: list[str] = field(default_factory=list)

    @property
    def vrps(self) -> VrpSet:
        return self.run.vrps

    @property
    def elapsed(self) -> int:
        """Simulated seconds this refresh spent fetching (incl. backoff)."""
        return sum(result.elapsed for result in self.fetches)

    @property
    def stale_points(self) -> list[str]:
        """Points served from stale cache (grace window) this cycle."""
        return [uri for uri, f in self.freshness.items()
                if f is CacheFreshness.STALE]

    @property
    def expired_points(self) -> list[str]:
        """Points withheld from validation: stale beyond the grace window."""
        return [uri for uri, f in self.freshness.items()
                if f is CacheFreshness.EXPIRED]


class RelyingParty:
    """A relying party with its own fetcher, cache, and validator.

    Parameters
    ----------
    trust_anchors:
        Out-of-band configured self-signed certificates.
    fetcher:
        The delivery path (carries the routing-reachability predicate and
        the fault model).
    clock:
        Simulated time; ``None`` (the default) reuses the fetcher's clock,
        which is almost always what a call site wants.
    keep_stale:
        Cache policy on failed refresh (see :class:`LocalCache`).
    stale_grace:
        Grace window in simulated seconds for serving stale cache entries
        (see :class:`LocalCache`); ``None`` serves stale copies forever.
    fetch_budget:
        Cap in simulated seconds on fetching per refresh cycle.  Checked
        between fetches (a single stalled fetch can still overshoot by
        one attempt's worth), so pair it with a resilient fetcher whose
        per-attempt deadline is small.  Once exhausted, remaining points
        are skipped and validation falls back to the cache — the
        stale-serve path.  ``None`` (default) never stops fetching.
    schedule:
        Optional fetch scheduling, the Stalloris defense: a
        :class:`~repro.repository.scheduler.SchedulerConfig` (or a
        prebuilt :class:`~repro.repository.scheduler.FetchScheduler`)
        that orders each round's fetches by priority (staleness x
        authority weight, then past-latency EWMA) and enforces a
        per-authority time budget, so one slow delegation subtree cannot
        monopolize the refresh.  Over-budget points are *deferred*:
        listed on :attr:`RefreshReport.deferred`, recorded as degraded,
        and served from stale-cache grace like a failed fetch.  Works
        with every engine mode.  ``None`` (the default) keeps the
        historical plain-sorted fetch order byte-identically.
    strict_manifests:
        Validator policy on manifest trouble (see :class:`PathValidator`).
    mode:
        The engine-selection knob, one of :data:`ENGINE_MODES`:

        - ``"serial"`` — the plain path: every refresh re-parses and
          re-verifies the whole cache snapshot.
        - ``"incremental"`` — keep an
          :class:`~repro.rp.incremental.IncrementalState` across
          refreshes so unchanged publication points are replayed instead
          of re-validated (see :mod:`repro.rp.incremental` for the exact
          invalidation rules).
        - ``"parallel"`` — each refresh opens a
          :class:`~repro.parallel.WorkerPool` of ``workers`` processes
          and a :class:`~repro.parallel.ParallelEngine` batch-verifies
          signatures through it, deduplicated through the
          content-addressed memo.

        Validation *results* are identical in every mode; only the work
        done to produce them changes.  ``None`` (the default) infers
        ``"parallel"`` when ``workers > 0`` and ``"serial"`` otherwise,
        so existing ``RelyingParty(workers=4)`` call sites keep working.
    workers:
        Process-pool size.  Required ≥ 1 for ``mode="parallel"`` (0 is
        promoted to 1); with ``mode="incremental"`` a positive count
        additionally attaches the parallel engine, which shares the
        incremental state's memos.  ``mode="serial"`` rejects a positive
        count — that combination is incoherent.  On platforms without a
        usable ``multiprocessing`` start method the pool degrades to
        in-process execution with the same semantics.
    lean:
        Streaming refresh: validated ROA objects are counted but not
        retained on the :class:`~repro.rp.pathval.ValidationRun` (only
        VRPs, CA certificates, issues and contacts survive), and the
        validator reads straight out of the cache's zero-copy
        :meth:`~repro.repository.LocalCache.snapshot`.  With
        ``mode="serial"`` this bounds refresh peak memory by the largest
        single publication point instead of the whole deployment — the
        Internet-scale configuration.  Layers that need the parsed
        objects (Suspenders corroboration, the monitor's ROA diffing)
        must keep the default False.
    incremental:
        Deprecated spelling of ``mode="incremental"``; passing it (with
        either value) emits :class:`DeprecationWarning`.  ``True`` maps
        to ``mode="incremental"``, ``False`` to the inferred mode.
    metrics:
        Telemetry registry shared with this RP's cache and validator
        (None → the process-global default registry).  Give each relying
        party its own registry to keep their metrics separable.
    """

    def __init__(
        self,
        trust_anchors: list[ResourceCertificate],
        fetcher: Fetcher,
        clock: Clock | None = None,
        *,
        keep_stale: bool = True,
        stale_grace: int | None = None,
        fetch_budget: int | None = None,
        schedule: SchedulerConfig | FetchScheduler | None = None,
        strict_manifests: bool = False,
        mode: str | None = None,
        workers: int = 0,
        lean: bool = False,
        incremental: bool | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if fetch_budget is not None and fetch_budget < 1:
            raise ValueError(f"bad fetch budget {fetch_budget}")
        if workers < 0:
            raise ValueError(f"worker count must be >= 0, got {workers}")
        if incremental is not None:
            warnings.warn(
                "RelyingParty(incremental=...) is deprecated; use "
                "mode='incremental' (or mode='serial')",
                DeprecationWarning,
                stacklevel=2,
            )
            if incremental:
                if mode not in (None, "incremental"):
                    raise ValueError(
                        f"incremental=True conflicts with mode={mode!r}"
                    )
                mode = "incremental"
        if mode is None:
            mode = "parallel" if workers > 0 else "serial"
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"mode must be one of {ENGINE_MODES}, got {mode!r}"
            )
        if mode == "parallel" and workers == 0:
            workers = 1
        if mode == "serial" and workers > 0:
            raise ValueError(
                "workers > 0 requires mode='parallel' or mode='incremental'"
            )
        self.mode = mode
        self.lean = lean
        self.fetcher = fetcher
        self.fetch_budget = fetch_budget
        self.workers = workers
        self.metrics = metrics if metrics is not None else default_registry()
        if isinstance(schedule, FetchScheduler):
            self.scheduler: FetchScheduler | None = schedule
        elif schedule is not None:
            self.scheduler = FetchScheduler(schedule, metrics=self.metrics)
        else:
            self.scheduler = None
        self.cache = LocalCache(keep_stale=keep_stale, stale_grace=stale_grace,
                                metrics=self.metrics)
        self.incremental_state = (
            IncrementalState(metrics=self.metrics)
            if mode == "incremental" else None
        )
        # With both features on, the engine prefills the incremental
        # state's memos and the validator keeps the incremental provider;
        # engine-alone additionally provides run-scoped point replay.
        self._engine = (
            ParallelEngine(self.incremental_state, metrics=self.metrics)
            if workers > 0 else None
        )
        self.validator = PathValidator(
            trust_anchors, strict_manifests=strict_manifests,
            metrics=self.metrics, incremental=self.incremental_state,
            parallel=(
                self._engine
                if self._engine is not None and self.incremental_state is None
                else None
            ),
            collect_objects=not lean,
        )
        self._clock = clock if clock is not None else fetcher.clock
        self._last_run: ValidationRun | None = None
        self._m_refreshes = self.metrics.counter(
            "repro_rp_refresh_total", help="completed refresh cycles"
        )
        self._m_rounds = self.metrics.counter(
            "repro_rp_refresh_rounds_total",
            help="fetch-validate discovery rounds across all refreshes",
        )
        self._m_vrps = self.metrics.gauge(
            "repro_rp_vrps", help="VRPs produced by the most recent refresh"
        )
        self._m_classifications = self.metrics.counter(
            "repro_rp_route_classifications_total",
            help="RFC 6811 route classifications, by resulting state",
            labelnames=("state",),
        )
        self._m_budget_exhausted = self.metrics.counter(
            "repro_rp_budget_exhausted_total",
            help="refresh cycles that hit their fetch budget and fell back "
                 "to cached data",
        )
        self._m_quarantined = self.metrics.counter(
            "repro_rp_quarantined_objects_total",
            help="objects excluded by containment while siblings validated",
        )
        self._m_degraded = self.metrics.counter(
            "repro_rp_degraded_points_total",
            help="publication points degraded in a refresh (fetch failure "
                 "or contained validation error)",
        )

    # -- the refresh cycle ----------------------------------------------------

    def refresh(self) -> RefreshReport:
        """One full synchronize-and-validate cycle."""
        if self._engine is None:
            return self._refresh()
        with WorkerPool(self.workers, metrics=self.metrics,
                        clock=self._clock) as pool:
            self._engine.begin_refresh(pool)
            try:
                return self._refresh()
            finally:
                self._engine.end_refresh()

    def _refresh(self) -> RefreshReport:
        report = RefreshReport(run=ValidationRun())
        fetched: set[str] = set()
        pending = {
            str(RsyncUri.parse(anchor.sia))
            for anchor in self.validator.trust_anchors
        }
        run = ValidationRun()
        start = self._clock.now
        budget_hit = False
        unfetched_at_break: set[str] = set()
        deferred: set[str] = set()
        if self.scheduler is not None:
            self.scheduler.begin_cycle()
        with self.metrics.trace("repro_rp_refresh_seconds", self._clock):
            while pending and not budget_hit:
                report.rounds += 1
                ordered = (
                    sorted(pending) if self.scheduler is None
                    else self.scheduler.order(
                        pending, self.cache, self._clock.now
                    )
                )
                for uri in ordered:
                    if (
                        self.fetch_budget is not None
                        and self._clock.now - start >= self.fetch_budget
                    ):
                        # Budget gone: stop fetching, validate what the
                        # cache has (the stale-fallback path).
                        budget_hit = True
                        unfetched_at_break = pending - fetched
                        break
                    if self.scheduler is not None:
                        remaining = (
                            None if self.fetch_budget is None
                            else self.fetch_budget
                            - (self._clock.now - start)
                        )
                        if not self.scheduler.admit(
                            uri, remaining_budget=remaining
                        ):
                            # Deferred to stale-cache grace: the cache's
                            # last good copy keeps serving this cycle.
                            deferred.add(uri)
                            continue
                    try:
                        result = self.fetcher.fetch_point(uri)
                    except Exception:
                        # Containment: a crashing fetch degrades one point
                        # (recorded below via its FAULTED status), never
                        # the whole refresh.
                        result = FetchResult(
                            uri, FetchStatus.FAULTED,
                            fetched_at=self._clock.now,
                        )
                    self.cache.update(result)
                    report.fetches.append(result)
                    fetched.add(uri)
                    if self.scheduler is not None:
                        self.scheduler.record(uri, result.elapsed)
                run = self._validate()
                discovered = {
                    str(RsyncUri.parse(uri))
                    for cert in run.validated_cas
                    for uri in cert.all_publication_uris
                }
                pending = discovered - fetched - deferred
        if budget_hit:
            report.budget_exhausted = True
            # One computation covers both the points skipped when the
            # budget tripped and anything the final validation discovered.
            report.skipped = sorted(unfetched_at_break | (pending - fetched))
            self._m_budget_exhausted.inc()
        report.deferred = sorted(deferred)
        report.freshness = self.cache.classify(self._clock.now)
        report.run = run
        report.degradation = self._degradation(
            report.fetches, run, report.deferred
        )
        self._last_run = run
        self._m_refreshes.inc()
        self._m_rounds.inc(report.rounds)
        self._m_vrps.set(len(run.vrps))
        if report.degradation.quarantined_objects:
            self._m_quarantined.inc(len(report.degradation.quarantined_objects))
        if report.degradation.degraded_points:
            self._m_degraded.inc(len(report.degradation.degraded_points))
        return report

    @staticmethod
    def _degradation(
        fetches: list[FetchResult],
        run: ValidationRun,
        deferred: list[str] = (),
    ) -> DegradationReport:
        """Aggregate this cycle's containment outcomes.

        Every degraded point appears exactly once: a point both
        quarantined by validation *and* failing its fetch (a composed
        timing + Byzantine fault) is still one degraded point, reported
        under its first-seen reason.
        """
        degradation = DegradationReport()
        seen: set[str] = set()

        def degrade(uri: str, reason: str) -> None:
            if uri not in seen:
                seen.add(uri)
                degradation.degraded_points.append((uri, reason))

        for issue in run.issues:
            if issue.code in _QUARANTINE_CODES:
                degradation.quarantined_objects.append(
                    (issue.point_uri, issue.file_name, issue.code)
                )
            elif issue.code == "point-quarantined":
                degrade(issue.point_uri, issue.code)
        for result in fetches:
            if not result.ok:
                degrade(result.uri, result.status.value)
        for uri in deferred:
            degrade(uri, "budget-deferred")
        return degradation

    def _validate(self) -> ValidationRun:
        """One validation pass over the current cache snapshot.

        The snapshot is the cache's zero-copy view: the validator (and
        the parallel engine's pre-pass) read the cached file dicts by
        reference, so a validation round allocates no per-point copies
        no matter how large the deployment is.
        """
        now = self._clock.now
        files = self.cache.snapshot(now)
        if self._engine is not None:
            self._engine.precompute(self.validator.trust_anchors, files)
        digests = (
            self.cache.digests(now)
            if self.incremental_state is not None or self._engine is not None
            else None
        )
        return self.validator.run(files, now, digests=digests)

    # -- classification surface -------------------------------------------------

    @property
    def clock(self):
        """The simulated clock this relying party runs on."""
        return self._clock

    @property
    def vrps(self) -> VrpSet:
        """The VRPs from the most recent refresh (empty before the first)."""
        if self._last_run is None:
            return VrpSet()
        return self._last_run.vrps

    @property
    def last_run(self) -> ValidationRun | None:
        return self._last_run

    def validate_origin(self, prefix, origin) -> OriginValidationOutcome:
        """RFC 6811 validation with evidence, against the current VRP set."""
        outcome = validate(prefix, origin, self.vrps)
        self._m_classifications.inc(state=outcome.state.value)
        return outcome

    def classify(self, route: Route) -> RouteValidity:
        """RFC 6811 classification against the current VRP set."""
        return self.validate_origin(route.prefix, route.origin).state

    def classify_parts(self, prefix_text: str, origin: int) -> RouteValidity:
        return self.classify(Route.parse(prefix_text, origin))
