"""The relying party: path validation and route origin validation.

Turns cached repository bytes into validated ROA payloads (VRPs) and
classifies BGP routes valid / unknown / invalid per RFC 6811 — the
semantics whose side effects the paper's Section 4 dissects.
"""

from .alt_semantics import (
    DispositionVrp,
    DispositionVrpSet,
    SubprefixDisposition,
    classify_disposition,
)
from .incremental import (
    IncrementalState,
    ParseMemo,
    PointResult,
    VerificationMemo,
)
from .lta import LocalOverrides, classify_with_overrides
from .origin import (
    OriginValidationOutcome,
    classify,
    classify_parts,
    explain,
    validate,
)
from .pathval import PathValidator, Severity, ValidationIssue, ValidationRun
from .relying_party import (
    ENGINE_MODES,
    DegradationReport,
    RefreshReport,
    RelyingParty,
)
from .states import Route, RouteValidity
from .suspenders import RetainedVrp, SuspendersRelyingParty
from .vrp import VRP, VrpSet

__all__ = [
    "DispositionVrp",
    "DispositionVrpSet",
    "ENGINE_MODES",
    "LocalOverrides",
    "SubprefixDisposition",
    "classify_disposition",
    "DegradationReport",
    "IncrementalState",
    "OriginValidationOutcome",
    "ParseMemo",
    "PointResult",
    "VerificationMemo",
    "RetainedVrp",
    "SuspendersRelyingParty",
    "classify_with_overrides",
    "PathValidator",
    "RefreshReport",
    "RelyingParty",
    "Route",
    "RouteValidity",
    "Severity",
    "VRP",
    "ValidationIssue",
    "ValidationRun",
    "VrpSet",
    "classify",
    "classify_parts",
    "explain",
    "validate",
]
