"""Alternative route-validity semantics (the paper's footnote 5).

"Note that, in principle, other design choices are possible, e.g.,
requiring each ROA to explicitly indicate which routes for its subprefixes
should remain valid or unknown."  And among the closing open problems:
"Is the RPKI's sensitivity to missing objects caused by fundamental design
requirements, or are there alternate architectures that are more robust?"

This module makes that alternative concrete so the question can be
answered experimentally.  A :class:`DispositionVrp` is a VRP plus an
explicit *subprefix disposition*:

- ``INVALID`` — unauthorized routes under this ROA are invalid (exactly
  RFC 6811; protects against subprefix hijacks, but a missing subordinate
  ROA leaves its route invalid — Side Effect 6);
- ``UNKNOWN`` — unauthorized routes under this ROA fall back to unknown
  (missing information degrades gracefully, but longest-prefix match means
  a subprefix hijacker's route is *used* — no hijack protection).

:func:`classify_disposition` applies the rule: a route with a matching ROA
is valid; otherwise, if any covering ROA says INVALID, the route is
invalid; if covering ROAs exist but all say UNKNOWN, the route is unknown.
The ablation benchmark quantifies the paper's answer: the sensitivity *is*
fundamental — each disposition buys robustness against one threat by
surrendering it against the other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..resources import ASN, Prefix
from .states import Route, RouteValidity
from .vrp import VRP, VrpSet

__all__ = ["SubprefixDisposition", "DispositionVrp", "classify_disposition"]


class SubprefixDisposition(enum.Enum):
    """What a ROA says about unauthorized routes underneath it."""

    INVALID = "invalid"    # RFC 6811 behaviour (the RPKI's actual choice)
    UNKNOWN = "unknown"    # the footnote-5 alternative


@dataclass(frozen=True)
class DispositionVrp:
    """A VRP with an explicit subprefix disposition."""

    vrp: VRP
    disposition: SubprefixDisposition = SubprefixDisposition.INVALID

    @classmethod
    def parse(
        cls,
        text: str,
        asn: int,
        disposition: SubprefixDisposition = SubprefixDisposition.INVALID,
    ) -> "DispositionVrp":
        return cls(VRP.parse(text, asn), disposition)

    @property
    def prefix(self) -> Prefix:
        return self.vrp.prefix


class DispositionVrpSet:
    """A trie-indexed set of disposition-annotated VRPs."""

    def __init__(self, entries: list[DispositionVrp] | None = None):
        self._plain = VrpSet()
        self._dispositions: dict[VRP, SubprefixDisposition] = {}
        for entry in entries or []:
            self.add(entry)

    def add(self, entry: DispositionVrp) -> None:
        self._plain.add(entry.vrp)
        # If the same payload appears twice, the stricter disposition wins
        # (a relying party cannot safely ignore an INVALID vote).
        current = self._dispositions.get(entry.vrp)
        if current is not SubprefixDisposition.INVALID:
            self._dispositions[entry.vrp] = entry.disposition

    def covering(self, prefix: Prefix):
        for vrp in self._plain.covering(prefix):
            yield vrp, self._dispositions[vrp]

    def __len__(self) -> int:
        return len(self._plain)


def classify_disposition(
    route: Route, vrps: DispositionVrpSet
) -> RouteValidity:
    """Classify under footnote-5 semantics."""
    covered_invalid = False
    covered_any = False
    for vrp, disposition in vrps.covering(route.prefix):
        covered_any = True
        if vrp.matches(route.prefix, route.origin):
            return RouteValidity.VALID
        if disposition is SubprefixDisposition.INVALID:
            covered_invalid = True
    if covered_invalid:
        return RouteValidity.INVALID
    if covered_any:
        return RouteValidity.UNKNOWN
    return RouteValidity.UNKNOWN
