"""Validated ROA payloads (VRPs) and the indexed set route validation uses.

Path validation reduces every valid ROA to one or more VRPs — the triple
``(prefix, maxLength, asn)`` of RFC 6811.  :class:`VrpSet` indexes them in
a radix trie so that finding the *covering* VRPs of a route (the central
query of origin validation) is a single trie walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..resources import ASN, Prefix, PrefixMap

__all__ = ["VRP", "VrpSet"]


@dataclass(frozen=True, order=True)
class VRP:
    """One validated ROA payload: prefix, maxLength, origin ASN."""

    prefix: Prefix
    max_length: int
    asn: ASN

    def __post_init__(self) -> None:
        if not self.prefix.length <= self.max_length <= self.prefix.afi.bits:
            raise ValueError(
                f"maxLength {self.max_length} out of range for {self.prefix}"
            )

    @classmethod
    def parse(cls, text: str, asn: ASN | int) -> "VRP":
        """Parse the paper's ``"63.160.0.0/12-13"`` notation."""
        from ..rpki.roa import RoaPrefix

        roa_prefix = RoaPrefix.parse(text)
        return cls(
            prefix=roa_prefix.prefix,
            max_length=roa_prefix.effective_max_length,
            asn=ASN(int(asn)),
        )

    def covers(self, prefix: Prefix) -> bool:
        """True if this VRP is a *covering* ROA for the prefix (any ASN)."""
        return self.prefix.covers(prefix)

    def matches(self, prefix: Prefix, origin: ASN) -> bool:
        """The RFC 6811 *matching* test: covers, within maxLength, same AS."""
        return (
            self.prefix.covers(prefix)
            and prefix.length <= self.max_length
            and self.asn == origin
        )

    def __str__(self) -> str:
        if self.max_length == self.prefix.length:
            return f"({self.prefix}, {self.asn})"
        return f"({self.prefix}-{self.max_length}, {self.asn})"


class VrpSet:
    """An immutable-after-build, trie-indexed collection of VRPs.

    Iteration order, equality, and the delta methods all work over the
    *sorted* VRP list; that view (and a frozenset twin used for membership
    algebra) is computed once per mutation epoch and cached —
    :meth:`add` invalidates both — so the monitor's per-epoch set
    comparisons stop paying an O(n log n) sort per call.
    """

    def __init__(self, vrps: Iterable[VRP] = ()):
        self._index: PrefixMap[list[VRP]] = PrefixMap()
        self._all: list[VRP] = []
        self._members: set[VRP] = set()
        self._sorted: list[VRP] | None = None
        self._frozen: frozenset[VRP] | None = None
        self._content_hash: str | None = None
        self._by_asn: dict[ASN, tuple[VRP, ...]] | None = None
        self.extend(vrps)

    def add(self, vrp: VRP) -> None:
        if vrp in self._members:
            return
        self._insert(vrp)
        self._invalidate()

    def extend(self, vrps: Iterable[VRP]) -> int:
        """Bulk-add *vrps* with a single cache invalidation at the end.

        The fast path for construction: membership is one set probe per
        VRP (no per-bucket scan) and the sorted/frozen/hash/by-ASN views
        are dropped once for the whole batch instead of once per element.
        Returns how many VRPs were actually new.
        """
        added = 0
        for vrp in vrps:
            if vrp in self._members:
                continue
            self._insert(vrp)
            added += 1
        if added:
            self._invalidate()
        return added

    def _insert(self, vrp: VRP) -> None:
        bucket = self._index.get_or_insert(vrp.prefix, list)
        bucket.append(vrp)
        self._all.append(vrp)
        self._members.add(vrp)

    def _invalidate(self) -> None:
        self._sorted = None
        self._frozen = None
        self._content_hash = None
        self._by_asn = None

    def covering(self, prefix: Prefix) -> Iterator[VRP]:
        """All VRPs whose prefix covers *prefix*, least-specific first."""
        for _, bucket in self._index.covering(prefix):
            yield from bucket

    def _sorted_view(self) -> list[VRP]:
        if self._sorted is None:
            self._sorted = sorted(self._all)
        return self._sorted

    def as_frozenset(self) -> frozenset[VRP]:
        """This set's VRPs as a (cached) frozenset, for set algebra."""
        if self._frozen is None:
            self._frozen = frozenset(self._members)
        return self._frozen

    def content_hash(self) -> str:
        """A SHA-256 fingerprint of this set's *content*, cached per epoch.

        Two sets holding the same VRPs hash identically no matter how
        they were built — the content-addressed idiom the incremental
        engine uses for its memos, reused by ``repro.api`` to key its
        response cache so any refresh-induced VRP change changes the key
        and an unchanged set keeps every cached answer warm.
        """
        if self._content_hash is None:
            from ..crypto.hashing import sha256_hex

            payload = "\n".join(str(v) for v in self._sorted_view())
            self._content_hash = sha256_hex(payload.encode("utf-8"))
        return self._content_hash

    def by_asn(self, asn: ASN | int) -> tuple[VRP, ...]:
        """All VRPs authorizing *asn* as origin, sorted (cached per epoch).

        The per-ASN inverse of :meth:`covering` — the query plane's
        ``lookup_asn`` endpoint.  The index is built lazily on first use
        and invalidated by :meth:`add` like the other cached views.
        """
        if self._by_asn is None:
            index: dict[ASN, list[VRP]] = {}
            for vrp in self._sorted_view():
                index.setdefault(vrp.asn, []).append(vrp)
            self._by_asn = {a: tuple(vs) for a, vs in index.items()}
        return self._by_asn.get(ASN(int(asn)), ())

    def __iter__(self) -> Iterator[VRP]:
        return iter(self._sorted_view())

    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, vrp: VRP) -> bool:
        return vrp in self._members

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VrpSet):
            return NotImplemented
        return self._sorted_view() == other._sorted_view()

    def difference(self, other: "VrpSet") -> list[VRP]:
        """VRPs present here but not in *other* (for monitor diffs)."""
        other_frozen = other.as_frozenset()
        return [vrp for vrp in self._sorted_view() if vrp not in other_frozen]

    def added(self, previous: "VrpSet") -> list[VRP]:
        """VRPs in this set that *previous* lacked, sorted.

        The per-epoch monitor delta: with both frozensets cached this is
        one set difference, not a membership probe per element.
        """
        return sorted(self.as_frozenset() - previous.as_frozenset())

    def removed(self, previous: "VrpSet") -> list[VRP]:
        """VRPs *previous* had that this set lacks, sorted (whack signal)."""
        return sorted(previous.as_frozenset() - self.as_frozenset())

    def __repr__(self) -> str:
        return f"VrpSet({len(self._all)} VRPs)"
