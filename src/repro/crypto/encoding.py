"""Canonical deterministic serialization for signed objects.

Production RPKI objects are DER-encoded ASN.1 inside CMS wrappers.  The
property that matters for this reproduction is *canonicality*: the same
logical object must always serialize to the same bytes, so that signatures,
manifest hashes, and monitor diffs are stable.  We implement a compact
tag-length-value scheme ("CTLV") with exactly that property:

======  =============================================
tag     payload
======  =============================================
``N``   null
``T``   boolean true     (no payload)
``F``   boolean false    (no payload)
``I``   signed integer   (minimal big-endian two's complement)
``B``   byte string
``S``   UTF-8 text string
``L``   list             (concatenated encodings of the items)
``M``   map              (keys sorted by encoded bytes; key/value pairs)
======  =============================================

Lengths are 4-byte big-endian.  Maps reject duplicate keys on decode, and
the decoder rejects trailing garbage — both classic sources of PKI
malleability bugs.

This module is the serialization *engine* — the CTLV codec is the single
hottest function family in an Internet-scale refresh, so both directions
are built for throughput:

- :func:`encode` is a single-buffer iterative encoder.  Containers
  reserve a 4-byte length slot up front and backpatch it once the body is
  written, so no list or map ever materializes its body in a side buffer
  and copies it into the parent (the old recursive codec built every
  container twice).  Map pairs are emitted in iteration order and the
  body is rebuilt in sorted-key order only when iteration order was not
  already canonical — which it almost always is, because the builders in
  :mod:`repro.rpki` construct payload dictionaries deterministically.
- :func:`decode` is a zero-copy decoder: one :class:`memoryview` over the
  input plus an offset cursor.  Container children decode against an
  explicit ``limit`` instead of a per-child ``data[:end]`` slice copy,
  which made the old decoder quadratic on manifest-sized lists.
- Integer minimality is checked arithmetically (the payload length must
  equal the canonical width for the decoded value) instead of re-encoding
  every integer and comparing bytes.

Nesting is capped at :data:`MAX_NESTING` containers in both directions —
a deterministic :class:`EncodingError` instead of an interpreter
``RecursionError`` on decoder-bomb inputs (see
:func:`repro.repository.faults.nested_bomb`).

The previous recursive codec is preserved verbatim (plus the same nesting
cap) as :mod:`repro.crypto.encoding_reference`; the differential fuzz
suite under ``tests/crypto/`` pins this engine byte-identical to it on
random value trees and agreement on every malformed-input rejection
class.
"""

from __future__ import annotations

import struct
from typing import Any

from .errors import EncodingError

__all__ = ["encode", "encode_parts", "decode", "toplevel_spans", "MAX_NESTING"]

_LEN = struct.Struct(">I")
_HDR = struct.Struct(">BI")  # tag byte + 4-byte length, packed in one call

#: Maximum container nesting depth the codec accepts, in both directions.
#: Real objects nest a handful of levels; the cap turns a decoder-bomb
#: payload into a deterministic :class:`EncodingError` instead of a
#: Python ``RecursionError``.
MAX_NESTING = 64

Encodable = None | bool | int | bytes | str | list | tuple | dict

# Scalar tags with fixed empty payloads, pre-packed.
_NULL = b"N\x00\x00\x00\x00"
_TRUE = b"T\x00\x00\x00\x00"
_FALSE = b"F\x00\x00\x00\x00"
_LIST_OPEN = b"L\x00\x00\x00\x00"
_MAP_OPEN = b"M\x00\x00\x00\x00"

_DONE = object()  # iterator-exhausted sentinel (never a user value)


def encode(value: Any) -> bytes:
    """Canonically encode *value* (CTLV).  Deterministic by construction.

    Single pass, single buffer: container headers are written with a
    zero length slot that is backpatched when the container closes.
    """
    out = bytearray()
    pack = _HDR.pack
    pack_into = _LEN.pack_into
    # One frame per open container, innermost last.
    #   list frame: [False, item_iterator, body_start]
    #   map frame:  [True, pair_iterator, body_start, spans,
    #                pending_value, value_pending?]
    # A map frame's spans list collects [key_end, pair_end] per pair
    # (key_start is the previous pair's end), so the close step can
    # verify canonical key order — and rebuild the body only if needed.
    stack: list = []
    while True:
        if value is None:
            out += _NULL
        elif value is True:
            out += _TRUE
        elif value is False:
            out += _FALSE
        elif isinstance(value, int):
            # Minimal-length big-endian two's complement; the +8 keeps a
            # sign bit (and maps value 0 to the single byte 0x00).
            width = (value.bit_length() + 8) >> 3
            out += pack(73, width)  # b"I"
            out += value.to_bytes(width, "big", signed=True)
        elif isinstance(value, bytes):
            out += pack(66, len(value))  # b"B"
            out += value
        elif isinstance(value, str):
            payload = value.encode("utf-8")
            out += pack(83, len(payload))  # b"S"
            out += payload
        elif isinstance(value, (list, tuple)):
            if len(stack) >= MAX_NESTING:
                raise EncodingError(
                    f"nesting deeper than {MAX_NESTING} containers"
                )
            out += _LIST_OPEN
            stack.append([False, iter(value), len(out)])
        elif isinstance(value, dict):
            if len(stack) >= MAX_NESTING:
                raise EncodingError(
                    f"nesting deeper than {MAX_NESTING} containers"
                )
            out += _MAP_OPEN
            stack.append([True, iter(value.items()), len(out), [], None, False])
        else:
            raise EncodingError(
                f"cannot canonically encode {type(value).__name__}"
            )

        # Pull the next value from the innermost open frame, closing
        # finished frames (backpatching their length slots) as we go.
        while stack:
            frame = stack[-1]
            if not frame[0]:  # list
                nxt = next(frame[1], _DONE)
                if nxt is _DONE:
                    stack.pop()
                    body_start = frame[2]
                    pack_into(out, body_start - 4, len(out) - body_start)
                    continue
                value = nxt
                break
            # map
            spans = frame[3]
            if frame[5]:
                # A key just finished; its value is pending.
                spans[-1][0] = len(out)  # key_end
                value = frame[4]
                frame[4] = None
                frame[5] = False
                break
            if spans:
                spans[-1][1] = len(out)  # previous pair_end
            nxt = next(frame[1], _DONE)
            if nxt is _DONE:
                stack.pop()
                _close_map(out, frame[2], spans)
                continue
            spans.append([0, 0])
            frame[4] = nxt[1]
            frame[5] = True
            value = nxt[0]
            break
        else:
            return bytes(out)


def _close_map(out: bytearray, body_start: int, spans: list) -> None:
    """Finish a map body: enforce canonical key order, backpatch length.

    Pairs were written in dict-iteration order.  Canonical CTLV sorts
    pairs by encoded key bytes, so verify order in place and rebuild the
    body only when iteration order was not already sorted (rare: payload
    builders construct their dictionaries deterministically).
    """
    key_start = body_start
    previous: bytearray | None = None
    in_order = True
    for key_end, pair_end in spans:
        key_bytes = out[key_start:key_end]
        if previous is not None and key_bytes < previous:
            in_order = False
            break
        previous = key_bytes
        key_start = pair_end
    if not in_order:
        pairs = []
        key_start = body_start
        for key_end, pair_end in spans:
            pairs.append((out[key_start:key_end], out[key_start:pair_end]))
            key_start = pair_end
        pairs.sort(key=lambda pair: pair[0])
        del out[body_start:]
        for _key_bytes, chunk in pairs:
            out += chunk
    _LEN.pack_into(out, body_start - 4, len(out) - body_start)


def encode_parts(*encoded_items: bytes) -> bytes:
    """Encode a CTLV list whose items are *already* canonically encoded.

    The canonical-bytes fast path of :class:`repro.rpki.SignedObject`:
    an object's wire form is ``[payload, signature]``, and the payload's
    encoding is cached at issuance/parse time — so the wire form is a
    header plus concatenation, never a re-encode.
    """
    body_length = 0
    for item in encoded_items:
        body_length += len(item)
    return b"".join((b"L", _LEN.pack(body_length), *encoded_items))


def toplevel_spans(data: bytes) -> list[tuple[int, int]]:
    """Byte spans ``(start, end)`` of each item of a top-level CTLV list.

    Walks headers only — payloads are not validated (run :func:`decode`
    for that); the spans let a caller slice an item's exact canonical
    bytes out of the wire form without re-encoding it.
    """
    total = len(data)
    if total < 5 or data[0] != 76:  # b"L"
        raise EncodingError("not a CTLV list")
    (body_length,) = _LEN.unpack_from(data, 1)
    end = 5 + body_length
    if end != total:
        raise EncodingError("list length does not cover the input")
    spans: list[tuple[int, int]] = []
    cursor = 5
    while cursor < end:
        if cursor + 5 > end:
            raise EncodingError("truncated header")
        (length,) = _LEN.unpack_from(data, cursor + 1)
        item_end = cursor + 5 + length
        if item_end > end:
            raise EncodingError("truncated payload")
        spans.append((cursor, item_end))
        cursor = item_end
    return spans


def decode(data: bytes) -> Any:
    """Decode one CTLV value; rejects trailing bytes and duplicate map keys.

    Zero-copy: the input is wrapped in one :class:`memoryview` and every
    container child is decoded against an explicit limit — no per-child
    slice copies.
    """
    buf = data if isinstance(data, memoryview) else memoryview(data)
    total = len(buf)
    value, consumed = _decode_one(buf, 0, total, MAX_NESTING)
    if consumed != total:
        raise EncodingError(f"{total - consumed} trailing bytes after value")
    return value


def _decode_one(
    buf: memoryview, offset: int, limit: int, depth: int
) -> tuple[Any, int]:
    """Decode the value at *offset*, reading no further than *limit*.

    Returns ``(value, end_offset)``.  *depth* is the remaining container
    budget; opening a container at zero raises.
    """
    if offset + 5 > limit:
        raise EncodingError("truncated header")
    tag = buf[offset]
    (length,) = _LEN.unpack_from(buf, offset + 1)
    start = offset + 5
    end = start + length
    if end > limit:
        raise EncodingError("truncated payload")

    if tag == 73:  # I
        if start == end:
            raise EncodingError("empty integer payload")
        value = int.from_bytes(buf[start:end], "big", signed=True)
        # Minimality, checked arithmetically: a canonical encoding is
        # exactly as wide as the encoder's (bit_length + 8) >> 3 rule —
        # any extra leading 0x00/0xff byte makes the payload wider.
        if (value.bit_length() + 8) >> 3 != length:
            raise EncodingError("non-minimal integer encoding")
        return value, end
    if tag == 83:  # S
        try:
            return str(buf[start:end], "utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 in string") from exc
    if tag == 66:  # B
        return bytes(buf[start:end]), end
    if tag == 76:  # L
        if depth == 0:
            raise EncodingError(
                f"nesting deeper than {MAX_NESTING} containers"
            )
        items: list = []
        append = items.append
        cursor = start
        child_depth = depth - 1
        while cursor < end:
            item, cursor = _decode_one(buf, cursor, end, child_depth)
            append(item)
        return items, end
    if tag == 77:  # M
        if depth == 0:
            raise EncodingError(
                f"nesting deeper than {MAX_NESTING} containers"
            )
        result: dict = {}
        previous_key_bytes: bytes | None = None
        cursor = start
        child_depth = depth - 1
        while cursor < end:
            key_start = cursor
            key, cursor = _decode_one(buf, key_start, end, child_depth)
            key_bytes = bytes(buf[key_start:cursor])
            if previous_key_bytes is not None \
                    and key_bytes <= previous_key_bytes:
                raise EncodingError("map keys not strictly sorted")
            previous_key_bytes = key_bytes
            value, cursor = _decode_one(buf, cursor, end, child_depth)
            result[key] = value
        return result, end
    if tag == 78:  # N
        if length:
            raise EncodingError("tag b'N' must have empty payload")
        return None, end
    if tag == 84:  # T
        if length:
            raise EncodingError("tag b'T' must have empty payload")
        return True, end
    if tag == 70:  # F
        if length:
            raise EncodingError("tag b'F' must have empty payload")
        return False, end
    raise EncodingError(f"unknown tag {bytes(buf[offset:offset + 1])!r}")
