"""Canonical deterministic serialization for signed objects.

Production RPKI objects are DER-encoded ASN.1 inside CMS wrappers.  The
property that matters for this reproduction is *canonicality*: the same
logical object must always serialize to the same bytes, so that signatures,
manifest hashes, and monitor diffs are stable.  We implement a compact
tag-length-value scheme ("CTLV") with exactly that property:

======  =============================================
tag     payload
======  =============================================
``N``   null
``T``   boolean true     (no payload)
``F``   boolean false    (no payload)
``I``   signed integer   (minimal big-endian two's complement)
``B``   byte string
``S``   UTF-8 text string
``L``   list             (concatenated encodings of the items)
``M``   map              (keys sorted by encoded bytes; key/value pairs)
======  =============================================

Lengths are 4-byte big-endian.  Maps reject duplicate keys on decode, and
the decoder rejects trailing garbage — both classic sources of PKI
malleability bugs.
"""

from __future__ import annotations

import struct
from typing import Any

from .errors import EncodingError

__all__ = ["encode", "decode"]

_LEN = struct.Struct(">I")

Encodable = None | bool | int | bytes | str | list | tuple | dict


def encode(value: Any) -> bytes:
    """Canonically encode *value* (CTLV).  Deterministic by construction."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    # bool must be tested before int (bool is a subclass of int).
    if value is None:
        out += b"N" + _LEN.pack(0)
    elif value is True:
        out += b"T" + _LEN.pack(0)
    elif value is False:
        out += b"F" + _LEN.pack(0)
    elif isinstance(value, int):
        payload = _encode_int(value)
        out += b"I" + _LEN.pack(len(payload)) + payload
    elif isinstance(value, bytes):
        out += b"B" + _LEN.pack(len(value)) + value
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += b"S" + _LEN.pack(len(payload)) + payload
    elif isinstance(value, (list, tuple)):
        body = bytearray()
        for item in value:
            _encode_into(item, body)
        out += b"L" + _LEN.pack(len(body)) + body
    elif isinstance(value, dict):
        encoded_pairs = []
        for key, item in value.items():
            key_bytes = bytearray()
            _encode_into(key, key_bytes)
            item_bytes = bytearray()
            _encode_into(item, item_bytes)
            encoded_pairs.append((bytes(key_bytes), bytes(item_bytes)))
        encoded_pairs.sort(key=lambda pair: pair[0])
        body = bytearray()
        for key_bytes, item_bytes in encoded_pairs:
            body += key_bytes
            body += item_bytes
        out += b"M" + _LEN.pack(len(body)) + body
    else:
        raise EncodingError(f"cannot canonically encode {type(value).__name__}")


def _encode_int(value: int) -> bytes:
    """Minimal-length big-endian two's complement."""
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8  # +8 keeps a sign bit
    return value.to_bytes(length, "big", signed=True)


def decode(data: bytes) -> Any:
    """Decode one CTLV value; rejects trailing bytes and duplicate map keys."""
    value, consumed = _decode_one(data, 0)
    if consumed != len(data):
        raise EncodingError(f"{len(data) - consumed} trailing bytes after value")
    return value


def _decode_one(data: bytes, offset: int) -> tuple[Any, int]:
    if offset + 5 > len(data):
        raise EncodingError("truncated header")
    tag = data[offset : offset + 1]
    (length,) = _LEN.unpack_from(data, offset + 1)
    start = offset + 5
    end = start + length
    if end > len(data):
        raise EncodingError("truncated payload")
    payload = data[start:end]

    if tag == b"N":
        _expect_empty(tag, payload)
        return None, end
    if tag == b"T":
        _expect_empty(tag, payload)
        return True, end
    if tag == b"F":
        _expect_empty(tag, payload)
        return False, end
    if tag == b"I":
        if not payload:
            raise EncodingError("empty integer payload")
        value = int.from_bytes(payload, "big", signed=True)
        if _encode_int(value) != payload:
            raise EncodingError("non-minimal integer encoding")
        return value, end
    if tag == b"B":
        return payload, end
    if tag == b"S":
        try:
            return payload.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 in string") from exc
    if tag == b"L":
        items = []
        cursor = start
        while cursor < end:
            item, cursor = _decode_one(data[:end], cursor)
            items.append(item)
        return items, end
    if tag == b"M":
        result: dict = {}
        previous_key_bytes: bytes | None = None
        cursor = start
        while cursor < end:
            key_start = cursor
            key, cursor = _decode_one(data[:end], cursor)
            key_bytes = data[key_start:cursor]
            if previous_key_bytes is not None and key_bytes <= previous_key_bytes:
                raise EncodingError("map keys not strictly sorted")
            previous_key_bytes = key_bytes
            value, cursor = _decode_one(data[:end], cursor)
            result[key] = value
        return result, end
    raise EncodingError(f"unknown tag {tag!r}")


def _expect_empty(tag: bytes, payload: bytes) -> None:
    if payload:
        raise EncodingError(f"tag {tag!r} must have empty payload")
