"""Key identities and reproducible key generation for simulations.

A :class:`KeyPair` is an RSA keypair plus the derived *key identifier* —
the analog of the X.509 Subject Key Identifier that RPKI certificates use
to link a certificate to the key it certifies (and that key rollover, per
RFC 6489, rotates).

:class:`KeyFactory` hands out reproducible keypairs from a seed.  A model
RPKI can contain thousands of authorities; generating RSA keys one by one
dominates runtime, so the factory also maintains a pool of pre-generated
keys per (seed, bits) pair, shared process-wide.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from .encoding import encode
from .hashing import fingerprint, sha256
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair

__all__ = ["KeyPair", "KeyFactory", "key_id_of"]


# key_id_of memo.  Internet-scale worlds share one EE key per authority,
# so build_certificate derives the same key id tens of thousands of times;
# the id is a pure function of (modulus, exponent).  Bounded so a run that
# churns through endless throwaway keys cannot grow it without limit.
_KEY_ID_MEMO: dict[tuple[int, int], str] = {}
_KEY_ID_MEMO_MAX = 65536


def key_id_of(public: RsaPublicKey) -> str:
    """The key identifier: a hex fingerprint of the canonical public key."""
    memo_key = (public.modulus, public.exponent)
    key_id = _KEY_ID_MEMO.get(memo_key)
    if key_id is None:
        key_id = fingerprint(encode(public.to_dict()), length=20)
        if len(_KEY_ID_MEMO) >= _KEY_ID_MEMO_MAX:
            _KEY_ID_MEMO.clear()
        _KEY_ID_MEMO[memo_key] = key_id
    return key_id


@dataclass(frozen=True)
class KeyPair:
    """An RSA keypair with its derived key identifier."""

    private: RsaPrivateKey
    key_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.key_id:
            object.__setattr__(self, "key_id", key_id_of(self.private.public))

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public

    def sign(self, message: bytes) -> bytes:
        return self.private.sign(message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public.verify(message, signature)

    def __repr__(self) -> str:
        return f"KeyPair(key_id={self.key_id!r})"


class KeyFactory:
    """Reproducible keypair source.

    Two factories built with the same ``(seed, bits)`` produce the same
    sequence of keypairs, so an entire simulated RPKI — object hashes,
    signatures, manifests — is a pure function of its seed.

    A process-wide cache keyed by ``(seed, bits, index)`` means re-running
    a scenario (every test, every benchmark iteration) reuses keys instead
    of paying keygen again.
    """

    _cache: dict[tuple[int, int, int], KeyPair] = {}
    _cache_lock = threading.Lock()

    def __init__(self, seed: int = 0, bits: int = 512):
        self._seed = seed
        self._bits = bits
        self._index = 0

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def issued(self) -> int:
        """How many keypairs this factory instance has handed out."""
        return self._index

    def next_keypair(self) -> KeyPair:
        """The next keypair in this factory's deterministic sequence."""
        index = self._index
        self._index += 1
        cache_key = (self._seed, self._bits, index)
        with self._cache_lock:
            cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        rng = random.Random(self.stream_seed(index))
        pair = KeyPair(private=generate_keypair(self._bits, rng))
        with self._cache_lock:
            self._cache[cache_key] = pair
        return pair

    # -- parallel prefill surface (see repro.parallel.prefill_keys) ----------

    def stream_seed(self, index: int) -> int:
        """The RNG seed for keypair *index* of this factory's sequence.

        Each index derives its own RNG stream, so pulling key #k does not
        depend on having pulled keys #0..k-1 in the same process — the
        property that lets a worker pool generate any subset of the
        sequence in any order and still match serial generation exactly.
        """
        return int.from_bytes(
            sha256(encode([self._seed, self._bits, index])), "big"
        )

    def missing_indices(self, count: int) -> list[int]:
        """Of the next *count* sequence indices, those not yet cached."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        with self._cache_lock:
            return [
                self._index + offset
                for offset in range(count)
                if (self._seed, self._bits, self._index + offset)
                not in self._cache
            ]

    def adopt(self, index: int, private: RsaPrivateKey) -> None:
        """Install an externally generated keypair at sequence *index*.

        The prefill path: a pool worker ran the keygen for
        :meth:`stream_seed` of *index* and the parent adopts the result.
        An existing cache entry wins (first write stays authoritative),
        so racing a concurrent :meth:`next_keypair` is harmless.
        """
        pair = KeyPair(private=private)
        with self._cache_lock:
            self._cache.setdefault((self._seed, self._bits, index), pair)

    @classmethod
    def clear_cache(cls) -> None:
        """Drop the process-wide key cache (for memory-sensitive runs)."""
        with cls._cache_lock:
            cls._cache.clear()
