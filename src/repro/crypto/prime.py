"""Probabilistic primality testing and prime generation.

Supports the from-scratch RSA implementation in :mod:`repro.crypto.rsa`.
Generation is driven by an injected :class:`random.Random` so key material
— and therefore every signed object in a simulated RPKI — is reproducible
from a seed.
"""

from __future__ import annotations

import random

__all__ = ["is_probable_prime", "generate_prime", "SMALL_PRIMES"]

# Primes below 100, used as a cheap trial-division prefilter.
SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
    47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

_MILLER_RABIN_ROUNDS = 40


def is_probable_prime(n: int, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with 40 rounds.

    Deterministically correct for all n < 3,317,044,064,679,887,385,961,981
    when the fixed-base variant triggers; above that the error probability
    is below 4^-40, far beyond anything a simulation can hit.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    rng = rng or random.Random(n)  # deterministic witnesses per candidate
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits — the standard RSA trick.  The low bit is
    forced to 1 (odd).
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
