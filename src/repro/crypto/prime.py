"""Probabilistic primality testing and prime generation.

Supports the from-scratch RSA implementation in :mod:`repro.crypto.rsa`.
Generation is driven by an injected :class:`random.Random` so key material
— and therefore every signed object in a simulated RPKI — is reproducible
from a seed.
"""

from __future__ import annotations

import math
import random

__all__ = ["is_probable_prime", "generate_prime", "SMALL_PRIMES"]

# Primes below 100, used as a cheap trial-division prefilter (and the
# only primes a candidate may *equal* and still pass the gcd prefilter).
SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
    47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

_MILLER_RABIN_ROUNDS = 6


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * limit
    flags[:2] = b"\x00\x00"
    for p in range(2, int(limit ** 0.5) + 1):
        if flags[p]:
            flags[p * p:limit:p] = bytearray(len(range(p * p, limit, p)))
    return [i for i in range(limit) if flags[i]]

# Product of all primes below 2048: one gcd against it replaces ~300
# trial divisions.  Random keygen candidates are overwhelmingly rejected
# here, before any modular exponentiation happens.
_PRIMORIAL_LIMIT = 2048
_SIEVED_PRIMES = _sieve(_PRIMORIAL_LIMIT)
_PRIMORIAL = math.prod(_SIEVED_PRIMES)
_SMALL_PRIME_SET = frozenset(_SIEVED_PRIMES)


def is_probable_prime(n: int, rng: random.Random | None = None) -> bool:
    """Strong probable-prime test: gcd prefilter, base 2, random witnesses.

    Candidates sharing a factor with the primes-below-2048 primorial are
    rejected with a single ``gcd``; survivors face a base-2 strong
    Miller–Rabin round (which rejects virtually every remaining
    composite without spending a witness draw) and then
    ``_MILLER_RABIN_ROUNDS`` rounds with witnesses drawn from *rng* —
    by default a PRNG seeded with the candidate itself, so the verdict
    for a given ``n`` is deterministic and independent of call order.
    Combined error probability is far below ``4**-_MILLER_RABIN_ROUNDS``
    (base-2 strong pseudoprimes are already vanishingly rare).
    """
    if n < 2:
        return False
    if n < _PRIMORIAL_LIMIT:
        return n in _SMALL_PRIME_SET
    if math.gcd(n, _PRIMORIAL) != 1:
        return False

    # Write n - 1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def strong_round(a: int) -> bool:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            return True
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return True
        return False

    if not strong_round(2):
        return False
    rng = rng or random.Random(n)  # deterministic witnesses per candidate
    for _ in range(_MILLER_RABIN_ROUNDS):
        if not strong_round(rng.randrange(3, n - 1)):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits — the standard RSA trick.  The low bit is
    forced to 1 (odd).

    *rng* drives candidate generation only; primality witnesses come from
    each candidate's own deterministic stream (see
    :func:`is_probable_prime`), so the number of rounds the test spends
    on one candidate never shifts the bits of the next.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate
