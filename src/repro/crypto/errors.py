"""Exceptions raised by the cryptography layer."""

from __future__ import annotations


class CryptoError(Exception):
    """Base class for all cryptography errors."""


class KeySizeError(CryptoError):
    """A requested RSA modulus size was too small to be meaningful."""


class SignatureError(CryptoError):
    """A signature failed structural checks (verification itself returns bool)."""


class EncodingError(CryptoError):
    """A value could not be canonically encoded or decoded."""
