"""Textbook-correct RSA signatures with PKCS#1-v1.5-style padding.

This is the reproduction's stand-in for the production RPKI's RSA/SHA-256
CMS signatures.  The paper's attacks never forge signatures — they abuse
*authorized* keys — so what the substrate must provide is (1) unforgeability
against the simulation's own tampering (manifest/CRL checks must notice a
flipped bit) and (2) reproducibility (seeded keygen).  Both hold here.

Do not use this module outside the simulation: it has no blinding, no
constant-time guarantees, and default key sizes are chosen for test speed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..telemetry import default_registry
from .errors import KeySizeError, SignatureError
from .hashing import sha256
from .prime import generate_prime

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
    "generate_keypair_raw",
    "verify_raw",
    "record_verifications",
    "record_keygens",
]

# Keys are frozen dataclasses with no injection point, so signature
# telemetry binds to the process-global registry at import time (the
# default registry is a permanent singleton, only ever reset in place).
# Label children are resolved per call, never cached: Metric.reset()
# drops its children, and a child bound before the reset would keep
# counting into an object the registry no longer reads.
_SIGN_TOTAL = default_registry().counter(
    "repro_crypto_sign_total", help="RSA signatures produced"
)
_VERIFY_TOTAL = default_registry().counter(
    "repro_crypto_verify_total",
    help="RSA signature verifications, by outcome",
    labelnames=("outcome",),
)
_KEYGEN_TOTAL = default_registry().counter(
    "repro_crypto_keygen_total", help="RSA keypairs generated"
)

# SHA-256 DigestInfo prefix from RFC 8017, kept verbatim so padded messages
# are structured exactly like real PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_PUBLIC_EXPONENT = 65537
_MIN_MODULUS_BITS = 256


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (modulus, exponent)."""

    modulus: int
    exponent: int = _PUBLIC_EXPONENT

    @property
    def modulus_bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def cache_key(self) -> tuple[int, int]:
        """A cheap exact fingerprint of this key, for verification memos.

        Signature verification is a pure function of ``(modulus, exponent,
        message, signature)``; the raw integers identify the key without
        any hashing, which matters on memo-lookup hot paths.
        """
        return (self.modulus, self.exponent)

    @property
    def modulus_bytes(self) -> int:
        return (self.modulus_bits + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff *signature* is a valid signature of *message*.

        Structural errors (wrong length) return False rather than raising,
        so relying-party code can treat any bad signature uniformly.
        """
        ok = self._verify_raw(message, signature)
        _VERIFY_TOTAL.labels(outcome="accepted" if ok else "rejected").inc()
        return ok

    def _verify_raw(self, message: bytes, signature: bytes) -> bool:
        """The uninstrumented check (benchmarked against :meth:`verify`)."""
        if len(signature) != self.modulus_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.modulus:
            return False
        recovered = pow(sig_int, self.exponent, self.modulus)
        expected = int.from_bytes(_pad(message, self.modulus_bytes), "big")
        return recovered == expected

    def to_dict(self) -> dict:
        """Plain-data form for canonical encoding inside certificates."""
        return {"n": self.modulus, "e": self.exponent}

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPublicKey":
        return cls(modulus=data["n"], exponent=data["e"])


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; carries its public half.

    Keys produced by :func:`generate_keypair` additionally carry the CRT
    precomputation (``p``, ``q``, ``d_p``, ``d_q``, ``q_inv``; plus
    ``extra`` ``(r_i, d_i, t_i)`` triplets for multi-prime keys per
    RFC 8017 §3.2), which :meth:`sign` uses to replace one full-width
    modular exponentiation with several fractional-width ones — modular
    exponentiation cost grows superlinearly in operand width, so three
    third-width pows beat two half-width ones, which beat one full-width
    one.  Every path produces identical signature bytes (same
    mathematical value; pinned by ``tests/crypto/test_rsa.py``), so keys
    built from ``(public, d)`` alone — older pickles, hand-constructed
    fixtures — keep working on the plain path, and two-prime keys on the
    classic CRT path.
    """

    public: RsaPublicKey
    d: int
    p: int | None = None
    q: int | None = None
    d_p: int | None = None
    d_q: int | None = None
    q_inv: int | None = None
    # Multi-prime tail (RFC 8017 ``(r_i, d_i, t_i)``): prime, d mod
    # (r_i - 1), and the inverse of the preceding primes' product mod r_i.
    extra: tuple[tuple[int, int, int], ...] = ()

    def sign(self, message: bytes) -> bytes:
        """Sign SHA-256(message) with PKCS#1-v1.5-style padding."""
        _SIGN_TOTAL.inc()
        return self._sign_raw(message)

    def _sign_raw(self, message: bytes) -> bytes:
        """The uninstrumented operation (benchmarked against :meth:`sign`)."""
        padded = _pad(message, self.public.modulus_bytes)
        m = int.from_bytes(padded, "big")
        if m >= self.public.modulus:
            raise SignatureError("message representative exceeds modulus")
        s = self._power(m)
        return s.to_bytes(self.public.modulus_bytes, "big")

    def _power(self, m: int) -> int:
        """``m ** d  (mod n)``, via CRT when the precomputation is present."""
        if self.p is None or self.q is None:
            return pow(m, self.d, self.public.modulus)
        m1 = pow(m % self.p, self.d_p, self.p)
        m2 = pow(m % self.q, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        x = m2 + h * self.q
        if not self.extra:
            return x
        # Garner's algorithm over the remaining primes (RFC 8017 §5.1.2):
        # x already solves the congruences mod p*q; fold each r_i in.
        product = self.p * self.q
        for r_i, d_i, t_i in self.extra:
            m_i = pow(m % r_i, d_i, r_i)
            h = ((m_i - x) * t_i) % r_i
            x += product * h
            product *= r_i
        return x


def generate_keypair(bits: int = 512, rng: random.Random | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with a *bits*-bit modulus.

    *rng* makes generation reproducible; the default uses a fresh
    system-seeded generator.  512 bits is the simulation default — small
    enough that a full model RPKI signs in milliseconds, large enough that
    padding and DigestInfo fit comfortably.
    """
    key = generate_keypair_raw(bits, rng)
    _KEYGEN_TOTAL.inc()
    return key


def generate_keypair_raw(
    bits: int = 512, rng: random.Random | None = None
) -> RsaPrivateKey:
    """:func:`generate_keypair` minus telemetry: a pure pickle-safe function.

    This is the entry point :mod:`repro.parallel.worker` runs inside pool
    processes.  It must never touch the process-global metrics registry —
    a worker's increments would be invisible to the parent (or, under
    ``fork``, double-book against a stale copy); the parent credits the
    aggregate via :func:`record_keygens` instead.
    """
    if bits < _MIN_MODULUS_BITS:
        raise KeySizeError(
            f"modulus must be at least {_MIN_MODULUS_BITS} bits, got {bits}"
        )
    rng = rng or random.Random()
    # Multi-prime RSA (RFC 8017): three roughly-third-width primes.  The
    # public key and signature bytes are indistinguishable from two-prime
    # RSA at the same modulus size; what changes is private-key CRT cost
    # — three third-width modular exponentiations are markedly cheaper
    # than two half-width ones, and keygen tests smaller primes.
    sizes = (bits - 2 * (bits // 3), bits // 3, bits // 3)
    while True:
        primes = [generate_prime(size, rng) for size in sizes]
        if len(set(primes)) != len(primes):
            continue
        n = math.prod(primes)
        if n.bit_length() != bits:
            continue
        phi = math.prod(prime - 1 for prime in primes)
        try:
            d = pow(_PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; rare, retry
        p, q, *rest = primes
        product = p * q
        extra = []
        for r_i in rest:
            extra.append((r_i, d % (r_i - 1), pow(product, -1, r_i)))
            product *= r_i
        return RsaPrivateKey(
            public=RsaPublicKey(modulus=n), d=d,
            p=p, q=q, d_p=d % (p - 1), d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
            extra=tuple(extra),
        )


def verify_raw(modulus: int, exponent: int, message: bytes, signature: bytes) -> bool:
    """Uninstrumented signature check from plain integers and bytes.

    The pickle-safe pure-function form of :meth:`RsaPublicKey.verify`,
    for pool workers: no telemetry, no object graph — the parent
    aggregates outcomes with :func:`record_verifications`.
    """
    return RsaPublicKey(modulus=modulus, exponent=exponent)._verify_raw(
        message, signature
    )


def record_verifications(accepted: int, rejected: int) -> None:
    """Credit verifications performed elsewhere to this process's registry.

    Pool workers run :func:`verify_raw`, which deliberately does not
    count; the parent calls this once per reassembled batch so
    ``repro_crypto_verify_total`` keeps meaning "modular exponentiations
    performed on behalf of this process".
    """
    if accepted:
        _VERIFY_TOTAL.labels(outcome="accepted").inc(accepted)
    if rejected:
        _VERIFY_TOTAL.labels(outcome="rejected").inc(rejected)


def record_keygens(count: int) -> None:
    """Credit *count* worker-generated keypairs to this process's registry."""
    if count:
        _KEYGEN_TOTAL.inc(count)


def _pad(message: bytes, target_length: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    digest_info = _SHA256_DIGEST_INFO + sha256(message)
    padding_length = target_length - len(digest_info) - 3
    if padding_length < 8:
        raise SignatureError(
            f"modulus too small for SHA-256 DigestInfo ({target_length} bytes)"
        )
    return b"\x00\x01" + b"\xff" * padding_length + b"\x00" + digest_info
