"""Textbook-correct RSA signatures with PKCS#1-v1.5-style padding.

This is the reproduction's stand-in for the production RPKI's RSA/SHA-256
CMS signatures.  The paper's attacks never forge signatures — they abuse
*authorized* keys — so what the substrate must provide is (1) unforgeability
against the simulation's own tampering (manifest/CRL checks must notice a
flipped bit) and (2) reproducibility (seeded keygen).  Both hold here.

Do not use this module outside the simulation: it has no blinding, no
constant-time guarantees, and default key sizes are chosen for test speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..telemetry import default_registry
from .errors import KeySizeError, SignatureError
from .hashing import sha256
from .prime import generate_prime

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair"]

# Keys are frozen dataclasses with no injection point, so signature
# telemetry binds to the process-global registry at import time (the
# default registry is a permanent singleton, only ever reset in place).
# Label children are resolved per call, never cached: Metric.reset()
# drops its children, and a child bound before the reset would keep
# counting into an object the registry no longer reads.
_SIGN_TOTAL = default_registry().counter(
    "repro_crypto_sign_total", help="RSA signatures produced"
)
_VERIFY_TOTAL = default_registry().counter(
    "repro_crypto_verify_total",
    help="RSA signature verifications, by outcome",
    labelnames=("outcome",),
)
_KEYGEN_TOTAL = default_registry().counter(
    "repro_crypto_keygen_total", help="RSA keypairs generated"
)

# SHA-256 DigestInfo prefix from RFC 8017, kept verbatim so padded messages
# are structured exactly like real PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_PUBLIC_EXPONENT = 65537
_MIN_MODULUS_BITS = 256


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (modulus, exponent)."""

    modulus: int
    exponent: int = _PUBLIC_EXPONENT

    @property
    def modulus_bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def cache_key(self) -> tuple[int, int]:
        """A cheap exact fingerprint of this key, for verification memos.

        Signature verification is a pure function of ``(modulus, exponent,
        message, signature)``; the raw integers identify the key without
        any hashing, which matters on memo-lookup hot paths.
        """
        return (self.modulus, self.exponent)

    @property
    def modulus_bytes(self) -> int:
        return (self.modulus_bits + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff *signature* is a valid signature of *message*.

        Structural errors (wrong length) return False rather than raising,
        so relying-party code can treat any bad signature uniformly.
        """
        ok = self._verify_raw(message, signature)
        _VERIFY_TOTAL.labels(outcome="accepted" if ok else "rejected").inc()
        return ok

    def _verify_raw(self, message: bytes, signature: bytes) -> bool:
        """The uninstrumented check (benchmarked against :meth:`verify`)."""
        if len(signature) != self.modulus_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.modulus:
            return False
        recovered = pow(sig_int, self.exponent, self.modulus)
        expected = int.from_bytes(_pad(message, self.modulus_bytes), "big")
        return recovered == expected

    def to_dict(self) -> dict:
        """Plain-data form for canonical encoding inside certificates."""
        return {"n": self.modulus, "e": self.exponent}

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPublicKey":
        return cls(modulus=data["n"], exponent=data["e"])


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; carries its public half."""

    public: RsaPublicKey
    d: int

    def sign(self, message: bytes) -> bytes:
        """Sign SHA-256(message) with PKCS#1-v1.5-style padding."""
        _SIGN_TOTAL.inc()
        return self._sign_raw(message)

    def _sign_raw(self, message: bytes) -> bytes:
        """The uninstrumented operation (benchmarked against :meth:`sign`)."""
        padded = _pad(message, self.public.modulus_bytes)
        m = int.from_bytes(padded, "big")
        if m >= self.public.modulus:
            raise SignatureError("message representative exceeds modulus")
        s = pow(m, self.d, self.public.modulus)
        return s.to_bytes(self.public.modulus_bytes, "big")


def generate_keypair(bits: int = 512, rng: random.Random | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with a *bits*-bit modulus.

    *rng* makes generation reproducible; the default uses a fresh
    system-seeded generator.  512 bits is the simulation default — small
    enough that a full model RPKI signs in milliseconds, large enough that
    padding and DigestInfo fit comfortably.
    """
    if bits < _MIN_MODULUS_BITS:
        raise KeySizeError(
            f"modulus must be at least {_MIN_MODULUS_BITS} bits, got {bits}"
        )
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(_PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; rare, retry
        _KEYGEN_TOTAL.inc()
        return RsaPrivateKey(public=RsaPublicKey(modulus=n), d=d)


def _pad(message: bytes, target_length: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    digest_info = _SHA256_DIGEST_INFO + sha256(message)
    padding_length = target_length - len(digest_info) - 3
    if padding_length < 8:
        raise SignatureError(
            f"modulus too small for SHA-256 DigestInfo ({target_length} bytes)"
        )
    return b"\x00\x01" + b"\xff" * padding_length + b"\x00" + digest_info
