"""Hashing helpers: SHA-256 digests and short fingerprints.

The RPKI uses SHA-256 throughout (manifests list the SHA-256 hash of every
published object; certificates carry key identifiers derived from the key
hash).  We wrap :mod:`hashlib` in a couple of convenience helpers so the
rest of the codebase never touches hash objects directly.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha256", "sha256_hex", "fingerprint"]


def sha256(data: bytes) -> bytes:
    """The 32-byte SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """The SHA-256 digest of *data* as 64 lowercase hex characters."""
    return hashlib.sha256(data).hexdigest()


def fingerprint(data: bytes, length: int = 16) -> str:
    """A short, human-scannable hex fingerprint (default 16 hex chars).

    Used for key identifiers and object names in logs and monitors; long
    enough that collisions are not a practical concern at simulation scale.
    """
    if length < 8 or length > 64:
        raise ValueError(f"fingerprint length out of range: {length}")
    return sha256_hex(data)[:length]
