"""Reference CTLV codec: the original recursive implementation.

This is the pre-engine codec from :mod:`repro.crypto.encoding`, kept
verbatim as the differential-testing oracle.  The production engine is a
single-buffer iterative encoder plus a zero-copy ``memoryview`` decoder;
the fuzz suite under ``tests/crypto/`` pins the two byte-identical on
random value trees and in agreement on every malformed-input rejection
class.

The only deliberate change from the historical code is the explicit
:data:`~repro.crypto.encoding.MAX_NESTING` container-depth cap (shared
with the engine).  The historical codec relied on the interpreter's
recursion limit, which raised ``RecursionError`` at an interpreter-
configurable depth; a deterministic :class:`EncodingError` at a fixed
depth keeps the two codecs' rejection behavior comparable.

Do not use this module on hot paths — it materializes every container
body twice on encode and copies a slice per child on decode.
"""

from __future__ import annotations

import struct
from typing import Any

from .encoding import MAX_NESTING
from .errors import EncodingError

__all__ = ["encode", "decode", "MAX_NESTING"]

_LEN = struct.Struct(">I")

Encodable = None | bool | int | bytes | str | list | tuple | dict


def encode(value: Any) -> bytes:
    """Canonically encode *value* (CTLV).  Deterministic by construction."""
    out = bytearray()
    _encode_into(value, out, MAX_NESTING)
    return bytes(out)


def _encode_into(value: Any, out: bytearray, depth: int) -> None:
    # bool must be tested before int (bool is a subclass of int).
    if value is None:
        out += b"N" + _LEN.pack(0)
    elif value is True:
        out += b"T" + _LEN.pack(0)
    elif value is False:
        out += b"F" + _LEN.pack(0)
    elif isinstance(value, int):
        payload = _encode_int(value)
        out += b"I" + _LEN.pack(len(payload)) + payload
    elif isinstance(value, bytes):
        out += b"B" + _LEN.pack(len(value)) + value
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += b"S" + _LEN.pack(len(payload)) + payload
    elif isinstance(value, (list, tuple)):
        if depth == 0:
            raise EncodingError(f"nesting deeper than {MAX_NESTING} containers")
        body = bytearray()
        for item in value:
            _encode_into(item, body, depth - 1)
        out += b"L" + _LEN.pack(len(body)) + body
    elif isinstance(value, dict):
        if depth == 0:
            raise EncodingError(f"nesting deeper than {MAX_NESTING} containers")
        encoded_pairs = []
        for key, item in value.items():
            key_bytes = bytearray()
            _encode_into(key, key_bytes, depth - 1)
            item_bytes = bytearray()
            _encode_into(item, item_bytes, depth - 1)
            encoded_pairs.append((bytes(key_bytes), bytes(item_bytes)))
        encoded_pairs.sort(key=lambda pair: pair[0])
        body = bytearray()
        for key_bytes, item_bytes in encoded_pairs:
            body += key_bytes
            body += item_bytes
        out += b"M" + _LEN.pack(len(body)) + body
    else:
        raise EncodingError(f"cannot canonically encode {type(value).__name__}")


def _encode_int(value: int) -> bytes:
    """Minimal-length big-endian two's complement."""
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8  # +8 keeps a sign bit
    return value.to_bytes(length, "big", signed=True)


def decode(data: bytes) -> Any:
    """Decode one CTLV value; rejects trailing bytes and duplicate map keys."""
    value, consumed = _decode_one(data, 0, MAX_NESTING)
    if consumed != len(data):
        raise EncodingError(f"{len(data) - consumed} trailing bytes after value")
    return value


def _decode_one(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if offset + 5 > len(data):
        raise EncodingError("truncated header")
    tag = data[offset : offset + 1]
    (length,) = _LEN.unpack_from(data, offset + 1)
    start = offset + 5
    end = start + length
    if end > len(data):
        raise EncodingError("truncated payload")
    payload = data[start:end]

    if tag == b"N":
        _expect_empty(tag, payload)
        return None, end
    if tag == b"T":
        _expect_empty(tag, payload)
        return True, end
    if tag == b"F":
        _expect_empty(tag, payload)
        return False, end
    if tag == b"I":
        if not payload:
            raise EncodingError("empty integer payload")
        value = int.from_bytes(payload, "big", signed=True)
        if _encode_int(value) != payload:
            raise EncodingError("non-minimal integer encoding")
        return value, end
    if tag == b"B":
        return payload, end
    if tag == b"S":
        try:
            return payload.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 in string") from exc
    if tag == b"L":
        if depth == 0:
            raise EncodingError(f"nesting deeper than {MAX_NESTING} containers")
        items = []
        cursor = start
        while cursor < end:
            item, cursor = _decode_one(data[:end], cursor, depth - 1)
            items.append(item)
        return items, end
    if tag == b"M":
        if depth == 0:
            raise EncodingError(f"nesting deeper than {MAX_NESTING} containers")
        result: dict = {}
        previous_key_bytes: bytes | None = None
        cursor = start
        while cursor < end:
            key_start = cursor
            key, cursor = _decode_one(data[:end], cursor, depth - 1)
            key_bytes = data[key_start:cursor]
            if previous_key_bytes is not None and key_bytes <= previous_key_bytes:
                raise EncodingError("map keys not strictly sorted")
            previous_key_bytes = key_bytes
            value, cursor = _decode_one(data[:end], cursor, depth - 1)
            result[key] = value
        return result, end
    raise EncodingError(f"unknown tag {tag!r}")


def _expect_empty(tag: bytes, payload: bytes) -> None:
    if payload:
        raise EncodingError(f"tag {tag!r} must have empty payload")
