"""From-scratch cryptography substrate.

Provides everything the model RPKI needs to sign and verify objects:
SHA-256 hashing, Miller–Rabin prime generation, RSA signatures with
PKCS#1-v1.5-style padding, a canonical deterministic serialization
(the stand-in for DER), and reproducible key generation.

Simulation-grade only — see :mod:`repro.crypto.rsa` for the caveats.
"""

from .encoding import decode, encode
from .errors import CryptoError, EncodingError, KeySizeError, SignatureError
from .hashing import fingerprint, sha256, sha256_hex
from .keys import KeyFactory, KeyPair, key_id_of
from .prime import generate_prime, is_probable_prime
from .rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    generate_keypair_raw,
    record_keygens,
    record_verifications,
    verify_raw,
)

__all__ = [
    "CryptoError",
    "EncodingError",
    "KeyFactory",
    "KeyPair",
    "KeySizeError",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SignatureError",
    "decode",
    "encode",
    "fingerprint",
    "generate_keypair",
    "generate_keypair_raw",
    "generate_prime",
    "is_probable_prime",
    "key_id_of",
    "record_keygens",
    "record_verifications",
    "sha256",
    "sha256_hex",
    "verify_raw",
]
