"""The cache side of RTR: a relying party serving routers.

Keeps the current VRP set under a monotonically increasing *serial*, a
bounded window of per-serial diffs for incremental updates, and any number
of attached router sessions.  When the relying party's refresh changes the
VRP set, :meth:`RtrCacheServer.update` bumps the serial and sends a Serial
Notify down every session — the routers then pull the delta.

This is the last hop of the paper's Figure 1: the cache's beliefs, however
they were manipulated, become every attached router's route-validity
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rp.vrp import VRP, VrpSet
from ..telemetry import MetricsRegistry, default_registry
from .channel import ChannelClosed, DuplexPipe
from .pdu import (
    CacheReset,
    CacheResponse,
    EndOfData,
    ErrorReport,
    Pdu,
    PduDecodeError,
    PrefixPdu,
    ResetQuery,
    SerialNotify,
    SerialQuery,
    decode_pdus,
    encode_pdu,
)

__all__ = ["RtrCacheServer"]

_DEFAULT_HISTORY_WINDOW = 16

# CamelCase PDU class name -> snake_case label value, cached because the
# lookup sits on the per-PDU send path.
_PDU_LABELS: dict[type, str] = {}


def _pdu_label(pdu: Pdu) -> str:
    label = _PDU_LABELS.get(type(pdu))
    if label is None:
        name = type(pdu).__name__
        label = "".join(
            ("_" + ch.lower()) if ch.isupper() else ch for ch in name
        ).lstrip("_")
        _PDU_LABELS[type(pdu)] = label
    return label


@dataclass
class _Session:
    pipe: DuplexPipe
    receive_buffer: bytes = b""
    alive: bool = True


@dataclass
class _Delta:
    announced: list[VRP] = field(default_factory=list)
    withdrawn: list[VRP] = field(default_factory=list)


class RtrCacheServer:
    """An RTR cache serving the VRP set of one relying party."""

    def __init__(
        self,
        *,
        session_id: int = 1,
        history_window: int = _DEFAULT_HISTORY_WINDOW,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0 <= session_id <= 0xFFFF:
            raise ValueError(f"session id out of range: {session_id}")
        if history_window < 1:
            raise ValueError("history window must be at least 1")
        self.session_id = session_id
        self.history_window = history_window
        self.serial = 0
        self._current: set[VRP] = set()
        self._history: dict[int, _Delta] = {}
        self._sessions: list[_Session] = []
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_pdus = self.metrics.counter(
            "repro_rtr_pdus_sent_total",
            help="PDUs sent to router sessions, by PDU type",
            labelnames=("type",),
        )
        # Bound children per PDU class: label resolution is too slow for
        # the per-PDU send path, a child increment is one attribute add.
        self._pdu_counters: dict[type, object] = {}
        self._m_serial_bumps = self.metrics.counter(
            "repro_rtr_serial_bumps_total",
            help="serial increments caused by real VRP-set change",
        )
        self._m_vrps = self.metrics.gauge(
            "repro_rtr_vrps", help="VRPs in the currently served set"
        )
        self._m_errors = self.metrics.counter(
            "repro_rtr_errors_total",
            help="router sessions dropped for cause, by error class",
            labelnames=("kind",),
        )

    # -- data-side API --------------------------------------------------------

    def update(self, vrps: VrpSet | set[VRP]) -> int:
        """Install a new VRP set; returns the (possibly unchanged) serial.

        Computes the delta against the current state; a no-op update does
        not bump the serial (RFC 6810 serials only move on real change).
        """
        # A VrpSet hands over its cached frozenset; anything else is
        # materialized the slow way (iterating a VrpSet would sort it).
        if isinstance(vrps, VrpSet):
            new_set: set[VRP] | frozenset[VRP] = vrps.as_frozenset()
        else:
            new_set = set(vrps)
        announced = sorted(new_set - self._current)
        withdrawn = sorted(self._current - new_set)
        if not announced and not withdrawn:
            return self.serial
        self.serial += 1
        self._current = new_set
        self._m_serial_bumps.inc()
        self._m_vrps.set(len(new_set))
        self._history[self.serial] = _Delta(announced, withdrawn)
        stale = [s for s in self._history if s <= self.serial - self.history_window]
        for s in stale:
            del self._history[s]
        self._notify_all()
        return self.serial

    @property
    def vrp_count(self) -> int:
        return len(self._current)

    # -- session management --------------------------------------------------------

    def attach(self, pipe: DuplexPipe) -> None:
        """Register a router session on *pipe*."""
        self._sessions.append(_Session(pipe=pipe))

    def _count_pdu(self, pdu: Pdu) -> None:
        child = self._pdu_counters.get(type(pdu))
        if child is None:
            child = self._pdu_counters[type(pdu)] = (
                self._m_pdus.labels(type=_pdu_label(pdu))
            )
        child.inc()

    def _notify_all(self) -> None:
        notify = SerialNotify(self.session_id, self.serial)
        encoded = encode_pdu(notify)
        for session in self._sessions:
            if session.alive and not session.pipe.closed:
                try:
                    session.pipe.to_router.send(encoded)
                    self._count_pdu(notify)
                except ChannelClosed:
                    session.alive = False

    def process(self) -> None:
        """Handle everything routers have sent since the last call."""
        for session in self._sessions:
            if not session.alive or session.pipe.closed:
                continue
            try:
                data = session.receive_buffer + session.pipe.to_cache.receive()
            except ChannelClosed:
                session.alive = False
                continue
            try:
                pdus, session.receive_buffer = decode_pdus(data)
            except PduDecodeError as exc:
                # Malformed bytes from a router: RFC 6810 §10 — report
                # the error and drop the session rather than letting the
                # parse exception reach the server loop.
                self._m_errors.inc(kind="decode")
                self._send(session, ErrorReport(error_code=0, text=str(exc)))
                session.alive = False
                session.receive_buffer = b""
                continue
            for pdu in pdus:
                try:
                    self._handle(session, pdu)
                except Exception as exc:
                    self._m_errors.inc(kind="internal")
                    self._send(session, ErrorReport(
                        error_code=0,
                        text=f"internal error: {type(exc).__name__}",
                    ))
                    session.alive = False
                    break

    # -- protocol ----------------------------------------------------------------------

    def _handle(self, session: _Session, pdu: Pdu) -> None:
        if isinstance(pdu, ResetQuery):
            self._send_full(session)
        elif isinstance(pdu, SerialQuery):
            self._send_incremental(session, pdu)
        elif isinstance(pdu, ErrorReport):
            session.alive = False
        # Anything else from a router is a protocol violation; RFC 6810
        # says send an Error Report and drop the session.
        elif not isinstance(pdu, (SerialNotify,)):
            self._m_errors.inc(kind="protocol")
            self._send(session, ErrorReport(error_code=3,
                                            text=f"unexpected {type(pdu).__name__}"))
            session.alive = False

    def _send_full(self, session: _Session) -> None:
        self._send(session, CacheResponse(self.session_id))
        for vrp in sorted(self._current):
            self._send(session, PrefixPdu(
                announce=True, prefix=vrp.prefix,
                max_length=vrp.max_length, asn=vrp.asn,
            ))
        self._send(session, EndOfData(self.session_id, self.serial))

    def _send_incremental(self, session: _Session, query: SerialQuery) -> None:
        if query.session_id != self.session_id:
            # The router is talking to a previous incarnation of this
            # cache; make it start over.
            self._send(session, CacheReset())
            return
        if query.serial == self.serial:
            self._send(session, CacheResponse(self.session_id))
            self._send(session, EndOfData(self.session_id, self.serial))
            return
        needed = range(query.serial + 1, self.serial + 1)
        if not all(s in self._history for s in needed):
            self._send(session, CacheReset())
            return
        self._send(session, CacheResponse(self.session_id))
        for s in needed:
            delta = self._history[s]
            for vrp in delta.withdrawn:
                self._send(session, PrefixPdu(
                    announce=False, prefix=vrp.prefix,
                    max_length=vrp.max_length, asn=vrp.asn,
                ))
            for vrp in delta.announced:
                self._send(session, PrefixPdu(
                    announce=True, prefix=vrp.prefix,
                    max_length=vrp.max_length, asn=vrp.asn,
                ))
        self._send(session, EndOfData(self.session_id, self.serial))

    def _send(self, session: _Session, pdu: Pdu) -> None:
        try:
            session.pipe.to_router.send(encode_pdu(pdu))
            self._count_pdu(pdu)
        except ChannelClosed:
            session.alive = False
