"""The cache side of RTR: a relying party serving a router fleet.

Keeps the current VRP set under a monotonically increasing *serial*, a
**bounded** window of per-serial deltas for incremental updates, and any
number of attached router sessions behind an event-driven
:class:`~repro.rtr.mux.SessionMux`.  When the relying party's refresh
changes the VRP set, :meth:`RtrCacheServer.update` bumps the serial and
sends a Serial Notify down every session — the routers then pull the
delta.

Three serving-scale mechanisms (see docs/rtr.md):

- **Session multiplexing.**  Input is drained through the mux's ready
  set with per-session fairness budgets, so one tick costs O(active
  sessions), not O(fleet), and one chatty session cannot starve its
  siblings.
- **Delta compaction.**  The history window is bounded both in serials
  (``history_window``) and in total delta VRPs (``max_history_vrps``);
  compacted-away serials are answered with Cache Reset — the client
  re-syncs from the snapshot instead of the cache replaying unbounded
  history (the Stalloris-shaped memory attack this forecloses).
- **Burst caching.**  The full-snapshot burst and every delta burst are
  encoded once per serial and re-served as bytes, so syncing 1,000
  routers costs one encoding plus 1,000 buffer appends.

This is the last hop of the paper's Figure 1: the cache's beliefs,
however they were manipulated, become every attached router's
route-validity oracle.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..rp.vrp import VRP, VrpSet
from ..telemetry import MetricsRegistry, default_registry
from .channel import ChannelClosed, DuplexPipe
from .mux import MuxSession, SessionMux
from .pdu import (
    CacheReset,
    CacheResponse,
    EndOfData,
    ErrorReport,
    Pdu,
    PrefixPdu,
    ResetQuery,
    SerialNotify,
    SerialQuery,
    encode_pdu,
)

__all__ = ["RtrCacheServer"]

_DEFAULT_HISTORY_WINDOW = 16
_DEFAULT_MAX_HISTORY_VRPS = 4096

# CamelCase PDU class name -> snake_case label value, cached because the
# lookup sits on the per-PDU send path.
_PDU_LABELS: dict[type, str] = {}


def _pdu_label(pdu: Pdu) -> str:
    label = _PDU_LABELS.get(type(pdu))
    if label is None:
        name = type(pdu).__name__
        label = "".join(
            ("_" + ch.lower()) if ch.isupper() else ch for ch in name
        ).lstrip("_")
        _PDU_LABELS[type(pdu)] = label
    return label


def _prefix_pdu(announce: bool, vrp: VRP) -> PrefixPdu:
    return PrefixPdu(
        announce=announce, prefix=vrp.prefix,
        max_length=vrp.max_length, asn=vrp.asn,
    )


@dataclass
class _Delta:
    """One serial's change set, with its wire encoding cached."""

    announced: list[VRP] = field(default_factory=list)
    withdrawn: list[VRP] = field(default_factory=list)
    encoded: bytes | None = None

    @property
    def size(self) -> int:
        return len(self.announced) + len(self.withdrawn)

    def encode(self) -> bytes:
        """Withdrawals then announcements, encoded once and memoized."""
        if self.encoded is None:
            parts = [
                encode_pdu(_prefix_pdu(False, vrp)) for vrp in self.withdrawn
            ]
            parts += [
                encode_pdu(_prefix_pdu(True, vrp)) for vrp in self.announced
            ]
            self.encoded = b"".join(parts)
        return self.encoded


class RtrCacheServer:
    """An RTR cache serving the VRP set of one relying party."""

    def __init__(
        self,
        *,
        session_id: int = 1,
        history_window: int = _DEFAULT_HISTORY_WINDOW,
        max_history_vrps: int = _DEFAULT_MAX_HISTORY_VRPS,
        fairness_budget: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0 <= session_id <= 0xFFFF:
            raise ValueError(f"session id out of range: {session_id}")
        if history_window < 1:
            raise ValueError("history window must be at least 1")
        if max_history_vrps < 1:
            raise ValueError("history VRP bound must be at least 1")
        self.session_id = session_id
        self.history_window = history_window
        self.max_history_vrps = max_history_vrps
        self.serial = 0
        self._current = VrpSet()
        self._history: dict[int, _Delta] = {}
        self._history_vrps = 0
        self._snapshot: tuple[int, bytes, int] | None = None
        self.metrics = metrics if metrics is not None else default_registry()
        mux_budget = {} if fairness_budget is None else {
            "fairness_budget": fairness_budget
        }
        self.mux = SessionMux(metrics=self.metrics, **mux_budget)
        self._m_pdus = self.metrics.counter(
            "repro_rtr_pdus_sent_total",
            help="PDUs sent to router sessions, by PDU type",
            labelnames=("type",),
        )
        # Bound children per PDU label: label resolution is too slow for
        # the per-PDU send path, a child increment is one attribute add.
        self._pdu_counters: dict[str, object] = {}
        self._m_serial_bumps = self.metrics.counter(
            "repro_rtr_serial_bumps_total",
            help="serial increments caused by real VRP-set change",
        )
        self._m_vrps = self.metrics.gauge(
            "repro_rtr_vrps", help="VRPs in the currently served set"
        )
        self._m_errors = self.metrics.counter(
            "repro_rtr_errors_total",
            help="router sessions dropped for cause, by error class",
            labelnames=("kind",),
        )
        self._m_history_vrps = self.metrics.gauge(
            "repro_rtr_delta_history_vrps",
            help="VRPs held across the retained delta window",
        )
        self._m_history_serials = self.metrics.gauge(
            "repro_rtr_delta_history_serials",
            help="serials retained in the delta window",
        )
        self._m_compactions = self.metrics.counter(
            "repro_rtr_compactions_total",
            help="delta serials compacted away into the snapshot, by reason",
            labelnames=("reason",),
        )
        self._m_resets = self.metrics.counter(
            "repro_rtr_cache_resets_total",
            help="Cache Reset answers forcing a client snapshot re-sync, "
                 "by reason",
            labelnames=("reason",),
        )

    # -- data-side API -----------------------------------------------------

    def update(self, vrps: VrpSet | set[VRP] | frozenset[VRP]) -> int:
        """Install a new VRP set; returns the (possibly unchanged) serial.

        Deltas come from :meth:`VrpSet.added` / :meth:`VrpSet.removed`,
        which reuse both sets' cached frozensets — one set difference,
        not a per-element probe.  A no-op update does not bump the
        serial (RFC 6810 serials only move on real change).

        .. deprecated:: 1.7
           Passing a raw ``set[VRP]`` is deprecated; build a
           :class:`VrpSet` (whose delta views are cached) instead.
        """
        if not isinstance(vrps, VrpSet):
            warnings.warn(
                "RtrCacheServer.update with a raw set of VRPs is "
                "deprecated; pass a VrpSet",
                DeprecationWarning, stacklevel=2,
            )
            vrps = VrpSet(vrps)
        announced = vrps.added(self._current)
        withdrawn = vrps.removed(self._current)
        if not announced and not withdrawn:
            return self.serial
        self.serial += 1
        self._current = vrps
        self._snapshot = None
        self._m_serial_bumps.inc()
        self._m_vrps.set(len(vrps))
        self._history[self.serial] = _Delta(announced, withdrawn)
        self._history_vrps += len(announced) + len(withdrawn)
        self._compact_history()
        self._notify_all()
        return self.serial

    def _compact_history(self) -> None:
        """Evict deltas past either bound; evicted serials need a reset.

        The snapshot (``self._current``) always answers for compacted
        serials, so eviction never loses data — it trades replay for a
        full re-sync, keeping cache memory bounded no matter the churn.
        """
        floor = self.serial - self.history_window
        while self._history:
            oldest = min(self._history)
            if oldest <= floor:
                reason = "window"
            elif self._history_vrps > self.max_history_vrps:
                reason = "size"
            else:
                break
            self._history_vrps -= self._history.pop(oldest).size
            self._m_compactions.inc(reason=reason)
        self._m_history_vrps.set(self._history_vrps)
        self._m_history_serials.set(len(self._history))

    @property
    def vrp_count(self) -> int:
        return len(self._current)

    @property
    def delta_history_serials(self) -> int:
        """Serials currently answerable from delta history."""
        return len(self._history)

    @property
    def delta_history_vrps(self) -> int:
        """Total VRPs held across the retained delta window."""
        return self._history_vrps

    def current_vrps(self) -> frozenset[VRP]:
        """The served VRP set (the chained-tier equivalence probe)."""
        return self._current.as_frozenset()

    @property
    def session_count(self) -> int:
        return len(self.mux)

    # -- session management ------------------------------------------------

    def attach(self, pipe: DuplexPipe) -> None:
        """Register a router session on *pipe*."""
        self.mux.attach(pipe)

    def _count_label(self, label: str, amount: int = 1) -> None:
        child = self._pdu_counters.get(label)
        if child is None:
            child = self._pdu_counters[label] = self._m_pdus.labels(type=label)
        child.inc(amount)

    def _count_pdu(self, pdu: Pdu) -> None:
        self._count_label(_pdu_label(pdu))

    def _notify_all(self) -> None:
        encoded = encode_pdu(SerialNotify(self.session_id, self.serial))
        delivered = self.mux.broadcast(encoded)
        if delivered:
            self._count_label("serial_notify", delivered)

    def process(self) -> None:
        """One mux tick: handle whatever routers have sent, fairly.

        Sessions that sent more than the fairness budget stay ready and
        continue on the next call; malformed bytes get an Error Report
        and the drop (RFC 6810 §10) without disturbing siblings.
        """
        for event in self.mux.poll():
            session = event.session
            if event.error is not None:
                # Malformed bytes from a router: the mux already dropped
                # the session; report the error best-effort and move on.
                self._m_errors.inc(kind="decode")
                self._send_final(session, ErrorReport(
                    error_code=0, text=event.error,
                ))
                continue
            if event.closed:
                continue
            for pdu in event.pdus:
                try:
                    self._handle(session, pdu)
                except Exception as exc:
                    self._m_errors.inc(kind="internal")
                    self._send_final(session, ErrorReport(
                        error_code=0,
                        text=f"internal error: {type(exc).__name__}",
                    ))
                    self.mux.drop(session)
                    break

    # -- protocol ----------------------------------------------------------

    def _handle(self, session: MuxSession, pdu: Pdu) -> None:
        if isinstance(pdu, ResetQuery):
            self._send_full(session)
        elif isinstance(pdu, SerialQuery):
            self._send_incremental(session, pdu)
        elif isinstance(pdu, ErrorReport):
            self.mux.drop(session)
        # Anything else from a router is a protocol violation; RFC 6810
        # says send an Error Report and drop the session.
        elif not isinstance(pdu, (SerialNotify,)):
            self._m_errors.inc(kind="protocol")
            self._send_final(session, ErrorReport(
                error_code=3, text=f"unexpected {type(pdu).__name__}",
            ))
            self.mux.drop(session)

    def _snapshot_burst(self) -> tuple[bytes, int]:
        """The full-sync burst for the current serial, encoded once.

        Returns ``(bytes, prefix_pdu_count)``; every router syncing at
        this serial is served the same cached bytes.
        """
        if self._snapshot is None or self._snapshot[0] != self.serial:
            parts = [encode_pdu(CacheResponse(self.session_id))]
            count = 0
            for vrp in self._current:  # cached sorted view
                parts.append(encode_pdu(_prefix_pdu(True, vrp)))
                count += 1
            parts.append(encode_pdu(EndOfData(self.session_id, self.serial)))
            self._snapshot = (self.serial, b"".join(parts), count)
        return self._snapshot[1], self._snapshot[2]

    def _send_full(self, session: MuxSession) -> None:
        burst, prefixes = self._snapshot_burst()
        if self._send_bytes(session, burst):
            self._count_label("cache_response")
            if prefixes:
                self._count_label("prefix_pdu", prefixes)
            self._count_label("end_of_data")

    def _send_incremental(self, session: MuxSession, query: SerialQuery) -> None:
        if query.session_id != self.session_id:
            # The router is talking to a previous incarnation of this
            # cache; make it start over.
            self._m_resets.inc(reason="session-id")
            self._send(session, CacheReset())
            return
        if query.serial == self.serial:
            self._send(session, CacheResponse(self.session_id))
            self._send(session, EndOfData(self.session_id, self.serial))
            return
        needed = range(query.serial + 1, self.serial + 1)
        if not all(s in self._history for s in needed):
            # The client is behind the compacted window: snapshot re-sync
            # instead of replaying history the cache no longer holds.
            self._m_resets.inc(reason="compacted")
            self._send(session, CacheReset())
            return
        deltas = [self._history[s] for s in needed]
        burst = b"".join(
            [encode_pdu(CacheResponse(self.session_id))]
            + [delta.encode() for delta in deltas]
            + [encode_pdu(EndOfData(self.session_id, self.serial))]
        )
        if self._send_bytes(session, burst):
            self._count_label("cache_response")
            prefixes = sum(delta.size for delta in deltas)
            if prefixes:
                self._count_label("prefix_pdu", prefixes)
            self._count_label("end_of_data")

    # -- transmission ------------------------------------------------------

    def _send_bytes(self, session: MuxSession, burst: bytes) -> bool:
        try:
            session.send(burst)
            return True
        except ChannelClosed:
            self.mux.drop(session)
            return False

    def _send(self, session: MuxSession, pdu: Pdu) -> None:
        if self._send_bytes(session, encode_pdu(pdu)):
            self._count_pdu(pdu)

    def _send_final(self, session: MuxSession, pdu: Pdu) -> None:
        """Best-effort send to a session being (or already) dropped."""
        try:
            session.send(encode_pdu(pdu))
            self._count_pdu(pdu)
        except ChannelClosed:
            pass
