"""The RPKI-to-Router protocol (RFC 6810): caches feeding BGP speakers.

The final hop of the paper's Figure 1 pipeline, with real wire encoding:
a relying-party cache serves its VRP set over RTR sessions — multiplexed
through an event-driven :class:`SessionMux` with per-session fairness,
bounded delta history with snapshot compaction, and cache-to-cache
chaining for router-fleet fan-out; routers hold local tables
synchronized by serial-numbered deltas.
"""

from .cache_server import RtrCacheServer
from .chain import CacheChain, ChainedRtrCache
from .channel import Channel, ChannelClosed, DuplexPipe
from .mux import MuxEvent, MuxSession, SessionMux
from .pdu import (
    CacheReset,
    CacheResponse,
    EndOfData,
    ErrorReport,
    Pdu,
    PduDecodeError,
    PduType,
    PrefixPdu,
    ResetQuery,
    RTR_VERSION,
    SerialNotify,
    SerialQuery,
    decode_pdus,
    encode_pdu,
)
from .router_client import RouterState, RtrRouterClient

__all__ = [
    "CacheChain",
    "CacheReset",
    "CacheResponse",
    "ChainedRtrCache",
    "Channel",
    "ChannelClosed",
    "DuplexPipe",
    "EndOfData",
    "ErrorReport",
    "MuxEvent",
    "MuxSession",
    "Pdu",
    "PduDecodeError",
    "PduType",
    "PrefixPdu",
    "RTR_VERSION",
    "ResetQuery",
    "RouterState",
    "RtrCacheServer",
    "RtrRouterClient",
    "SerialNotify",
    "SerialQuery",
    "SessionMux",
    "decode_pdus",
    "encode_pdu",
]
