"""Cache-to-cache RTR chaining: one validating RP, tiers of re-servers.

Real deployments do not hang thousands of routers off the validating
relying party directly — they interpose non-validating caches that speak
RTR both ways: client upstream, server downstream (the route-server
fan-out measured in "Keep Your Friends Close, but Your Routeservers
Closer", PAPERS.md).  For the paper's threat model this tier is where a
misbehaving authority's reach *multiplies*: whatever the validating RP
was manipulated into believing is re-served, serial by serial, to every
downstream tier with no further validation anywhere on the path.

:class:`ChainedRtrCache` is one such middle box — an
:class:`~repro.rtr.router_client.RtrRouterClient` pulling from an
upstream cache, re-serving through its own
:class:`~repro.rtr.cache_server.RtrCacheServer`.
:class:`CacheChain` builds the full tree (``tiers`` levels of ``fanout``
children each) and pumps it to convergence, exposing the deepest tier so
invariant checks can compare the far edge of the fan-out against the
validating RP (the chaos campaign and ``benchmarks/test_bench_rtr.py``
both do exactly that).
"""

from __future__ import annotations

from ..telemetry import MetricsRegistry
from .cache_server import RtrCacheServer
from .channel import DuplexPipe
from .router_client import RouterState, RtrRouterClient

__all__ = ["CacheChain", "ChainedRtrCache"]


class ChainedRtrCache:
    """A non-validating RTR cache: client upstream, server downstream.

    The downstream server's serial numbering is independent of the
    upstream's (each cache is its own RTR session space); only the VRP
    *content* propagates.  ``update`` is a no-op when the pulled set is
    unchanged, so pumping an idle chain costs no serial bumps.
    """

    def __init__(
        self,
        upstream: RtrCacheServer,
        *,
        session_id: int = 1,
        history_window: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.upstream = upstream
        self.metrics = metrics if metrics is not None else upstream.metrics
        server_opts = {} if history_window is None else {
            "history_window": history_window
        }
        self.server = RtrCacheServer(
            session_id=session_id, metrics=self.metrics, **server_opts
        )
        self._applied_serial: int | None = None
        self._m_reconnects = self.metrics.counter(
            "repro_rtr_chain_reconnects_total",
            help="chained-cache upstream sessions re-established after "
                 "failure",
        )
        self.pipe: DuplexPipe
        self.client: RtrRouterClient
        self._connect()

    def _connect(self) -> None:
        self.pipe = DuplexPipe()
        self.upstream.attach(self.pipe)
        self.client = RtrRouterClient(self.pipe)
        self.client.connect()
        self._applied_serial = None

    def pump(self) -> None:
        """One tick: pull from upstream, re-serve downstream.

        A failed or severed upstream session is transparently
        re-established with a fresh reset sync — the chain heals itself
        the way a real cache daemon reconnects, at the cost of one full
        snapshot pull.
        """
        if self.client.state is RouterState.FAILED or self.pipe.closed:
            self._m_reconnects.inc()
            self._connect()
        self.client.process()
        if (
            self.client.state is RouterState.SYNCED
            and self.client.serial != self._applied_serial
        ):
            self.server.update(self.client.vrp_set())
            self._applied_serial = self.client.serial
        self.server.process()

    def current_vrps(self):
        """The set this cache re-serves (the equivalence probe)."""
        return self.server.current_vrps()


class CacheChain:
    """A fan-out tree of chained caches rooted at one validating cache.

    ``tiers`` levels deep, each cache serving ``fanout`` children, so
    the deepest tier holds ``fanout ** tiers`` caches while the root
    only ever carries ``fanout`` RTR sessions itself.
    """

    def __init__(
        self,
        root: RtrCacheServer,
        *,
        tiers: int = 1,
        fanout: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        if tiers < 1:
            raise ValueError("a chain needs at least one tier")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.root = root
        self.tiers = tiers
        self.fanout = fanout
        self.metrics = metrics if metrics is not None else root.metrics
        self._tiers: list[list[ChainedRtrCache]] = []
        parents: list[RtrCacheServer] = [root]
        for _ in range(tiers):
            tier = [
                ChainedRtrCache(parent, metrics=self.metrics)
                for parent in parents
                for _ in range(fanout)
            ]
            self._tiers.append(tier)
            parents = [cache.server for cache in tier]
        self.metrics.gauge(
            "repro_rtr_chain_caches",
            help="chained (non-validating) caches in the fan-out tree",
        ).set(sum(len(tier) for tier in self._tiers))

    def caches(self) -> list[ChainedRtrCache]:
        """Every chained cache, shallow tiers first."""
        return [cache for tier in self._tiers for cache in tier]

    def tier(self, index: int) -> list[ChainedRtrCache]:
        return list(self._tiers[index])

    def deepest(self) -> list[ChainedRtrCache]:
        """The far edge of the fan-out — furthest from validation."""
        return list(self._tiers[-1])

    def pump(self, rounds: int | None = None) -> None:
        """Propagate the root's current set down every tier.

        One round moves data roughly half a tier (query up, burst
        down), so the default round count covers full propagation from
        a cold start; idle rounds cost only empty mux ticks.
        """
        if rounds is None:
            rounds = 2 * self.tiers + 2
        for _ in range(rounds):
            self.root.process()
            for tier in self._tiers:
                for cache in tier:
                    cache.pump()

    def divergent(self) -> list[ChainedRtrCache]:
        """Deepest-tier caches serving a set other than the root's."""
        truth = self.root.current_vrps()
        return [
            cache for cache in self.deepest()
            if cache.current_vrps() != truth
        ]
