"""An in-memory byte stream standing in for the RTR TCP connection.

RTR runs over a long-lived TCP session between router and cache.  The
simulation's stand-in is a pair of byte queues with explicit, manual
delivery — so tests can interleave, delay, or cut the connection at any
byte boundary, exercising the stream reassembly in the PDU codec.

A channel optionally carries one *listener* callback, invoked whenever
bytes arrive or the channel closes.  That is the readiness edge the
:class:`repro.rtr.mux.SessionMux` builds on: instead of scanning every
attached session per tick, the multiplexer is told which sessions have
work — the select/epoll of the simulated transport.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Channel", "ChannelClosed", "DuplexPipe"]


class ChannelClosed(Exception):
    """I/O on a closed channel."""


class Channel:
    """One direction of a byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._closed = False
        self._listener: Callable[[], None] | None = None

    @property
    def closed(self) -> bool:
        return self._closed

    def subscribe(self, listener: Callable[[], None] | None) -> None:
        """Install *listener*, called after every send and on close.

        One listener per channel (the last subscriber wins); pass
        ``None`` to unsubscribe.  If bytes are already buffered the
        listener fires immediately, so a subscriber never misses data
        that arrived before it attached.
        """
        self._listener = listener
        if listener is not None and (self._buffer or self._closed):
            listener()

    def send(self, data: bytes) -> None:
        if self._closed:
            raise ChannelClosed("send on closed channel")
        self._buffer.extend(data)
        if self._listener is not None:
            self._listener()

    def receive(self, limit: int | None = None) -> bytes:
        """Drain up to *limit* buffered bytes (all of them by default)."""
        if self._closed and not self._buffer:
            raise ChannelClosed("receive on closed, drained channel")
        if limit is None or limit >= len(self._buffer):
            data = bytes(self._buffer)
            self._buffer.clear()
            return data
        data = bytes(self._buffer[:limit])
        del self._buffer[:limit]
        return data

    def pending(self) -> int:
        return len(self._buffer)

    def close(self) -> None:
        self._closed = True
        if self._listener is not None:
            self._listener()


class DuplexPipe:
    """A connected pair of channels: the router↔cache session."""

    def __init__(self) -> None:
        self.to_cache = Channel()
        self.to_router = Channel()

    def close(self) -> None:
        self.to_cache.close()
        self.to_router.close()

    @property
    def closed(self) -> bool:
        return self.to_cache.closed or self.to_router.closed
