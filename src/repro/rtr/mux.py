"""An event-driven RTR session multiplexer with per-session fairness.

One validating cache feeds a *fleet* of routers — route-server
deployments hold thousands of concurrent RTR sessions, and the paper's
whack/threat model reaches every one of them through this fan-out tier.
Walking all sessions per tick is O(fleet) even when the fleet is idle;
the :class:`SessionMux` instead keeps a **ready set** fed by channel
listeners (see :meth:`repro.rtr.channel.Channel.subscribe`), so one tick
costs O(sessions with pending bytes), the select/epoll shape of a real
serving loop — on the simulated clock, with no threads.

Fairness: a single chatty (or hostile, Stalloris-style slow-feeding)
session must not starve its siblings, so each ready session is drained
at most ``fairness_budget`` PDUs per tick.  Left-over decoded PDUs stay
queued on the session and the session stays ready, guaranteeing every
session makes progress every tick regardless of how much one peer sends.

The mux owns transport concerns only — readiness, stream reassembly,
decode errors, closed channels, fan-out writes.  Protocol semantics
(what a Serial Query *means*) stay in :class:`repro.rtr.RtrCacheServer`,
which consumes the :class:`MuxEvent` stream :meth:`SessionMux.poll`
yields.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..telemetry import MetricsRegistry, default_registry
from .channel import ChannelClosed, DuplexPipe
from .pdu import Pdu, PduDecodeError, decode_pdus

__all__ = ["MuxEvent", "MuxSession", "SessionMux"]

_DEFAULT_FAIRNESS_BUDGET = 64


@dataclass
class MuxSession:
    """One attached router session: pipe, reassembly buffer, PDU queue."""

    sid: int
    pipe: DuplexPipe
    receive_buffer: bytes = b""
    pending: deque[Pdu] = field(default_factory=deque)
    alive: bool = True

    def send(self, encoded: bytes) -> None:
        """Write pre-encoded PDU bytes to the router side of the pipe."""
        self.pipe.to_router.send(encoded)


@dataclass(frozen=True)
class MuxEvent:
    """What one ready session produced in one tick.

    Exactly one of three shapes: a batch of decoded ``pdus``, a fatal
    ``error`` string (undecodable bytes — the session's buffers are
    already cleared), or ``closed`` (the peer hung up).
    """

    session: MuxSession
    pdus: tuple[Pdu, ...] = ()
    error: str | None = None
    closed: bool = False


class SessionMux:
    """Drains all attached sessions per tick, fairly, event-driven."""

    def __init__(
        self,
        *,
        fairness_budget: int = _DEFAULT_FAIRNESS_BUDGET,
        metrics: MetricsRegistry | None = None,
    ):
        if fairness_budget < 1:
            raise ValueError("fairness budget must be at least 1")
        self.fairness_budget = fairness_budget
        self._sessions: dict[int, MuxSession] = {}
        self._ready: set[int] = set()
        self._next_sid = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_sessions = self.metrics.gauge(
            "repro_rtr_sessions", help="router sessions currently attached"
        )
        self._m_session_events = self.metrics.counter(
            "repro_rtr_session_events_total",
            help="session lifecycle events, by event",
            labelnames=("event",),
        )
        self._m_ticks = self.metrics.counter(
            "repro_rtr_mux_ticks_total", help="multiplexer poll ticks"
        )
        self._m_drained = self.metrics.counter(
            "repro_rtr_pdus_drained_total",
            help="PDUs drained from router sessions and handed upstream",
        )
        self._m_deferred = self.metrics.counter(
            "repro_rtr_deferred_sessions_total",
            help="per-tick session drains cut short by the fairness budget",
        )

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def attach(self, pipe: DuplexPipe) -> MuxSession:
        """Register a router session on *pipe* and watch it for input."""
        sid = self._next_sid
        self._next_sid += 1
        session = MuxSession(sid=sid, pipe=pipe)
        self._sessions[sid] = session
        # The listener fires immediately if bytes are already buffered,
        # so a session attached mid-conversation is ready at once.
        pipe.to_cache.subscribe(lambda: self._ready.add(sid))
        self._m_sessions.set(len(self._sessions))
        self._m_session_events.inc(event="attached")
        return session

    def drop(self, session: MuxSession) -> None:
        """Forget *session* entirely: no more reads, writes, or memory."""
        if session.sid not in self._sessions:
            return
        session.alive = False
        session.receive_buffer = b""
        session.pending.clear()
        session.pipe.to_cache.subscribe(None)
        del self._sessions[session.sid]
        self._ready.discard(session.sid)
        self._m_sessions.set(len(self._sessions))
        self._m_session_events.inc(event="dropped")

    def sessions(self) -> list[MuxSession]:
        """Live sessions, in attach order."""
        return list(self._sessions.values())

    # -- writes ------------------------------------------------------------

    def broadcast(self, encoded: bytes) -> int:
        """Send pre-encoded bytes to every live session; returns deliveries.

        Sessions whose pipe has closed are dropped on the spot, so a
        broadcast over a mostly-dead fleet self-prunes instead of paying
        the dead sessions forever.
        """
        delivered = 0
        for session in list(self._sessions.values()):
            if session.pipe.closed:
                self.drop(session)
                continue
            try:
                session.send(encoded)
                delivered += 1
            except ChannelClosed:
                self.drop(session)
        return delivered

    # -- the tick ----------------------------------------------------------

    def poll(self) -> list[MuxEvent]:
        """One tick: drain every ready session, fairness-budgeted.

        Sessions become ready via channel listeners (bytes arrived, peer
        closed), never by scanning; a session left with queued PDUs or
        unread bytes stays ready for the next tick.  Ready sessions are
        visited in ascending session id for determinism.
        """
        self._m_ticks.inc()
        events: list[MuxEvent] = []
        ready, self._ready = self._ready, set()
        for sid in sorted(ready):
            session = self._sessions.get(sid)
            if session is None or not session.alive:
                continue
            event = self._drain(session)
            if event is not None:
                events.append(event)
        return events

    def _drain(self, session: MuxSession) -> MuxEvent | None:
        """Drain one session up to the fairness budget."""
        closed = False
        try:
            data = session.receive_buffer + session.pipe.to_cache.receive()
            session.receive_buffer = b""
        except ChannelClosed:
            data = session.receive_buffer
            session.receive_buffer = b""
            closed = True
        closed = closed or session.pipe.closed
        if data:
            try:
                pdus, session.receive_buffer = decode_pdus(data)
            except PduDecodeError as exc:
                self.drop(session)
                return MuxEvent(session=session, error=str(exc))
            session.pending.extend(pdus)
        if closed and not session.pending:
            self.drop(session)
            self._m_session_events.inc(event="closed")
            return MuxEvent(session=session, closed=True)
        if not session.pending:
            return None
        batch: list[Pdu] = []
        while session.pending and len(batch) < self.fairness_budget:
            batch.append(session.pending.popleft())
        self._m_drained.inc(len(batch))
        if session.pending or session.receive_buffer or closed:
            # More work than one fair share: stay ready, continue next
            # tick so siblings get their turn first.
            self._ready.add(session.sid)
            if session.pending:
                self._m_deferred.inc()
        return MuxEvent(session=session, pdus=tuple(batch))
