"""The router side of RTR: a BGP speaker's VRP table.

Implements the RFC 6810 router state machine: reset synchronization on
connect, incremental pulls on Serial Notify, and full resynchronization on
Cache Reset or a session-id change.  The resulting :meth:`vrp_set` is what
the router's route selection uses — plug it into
:class:`repro.bgp.SelectionPolicy` via :func:`repro.rp.classify` and the
whole paper pipeline runs over a faithful cache-to-router channel.
"""

from __future__ import annotations

import enum

from ..rp.vrp import VRP, VrpSet
from .channel import ChannelClosed, DuplexPipe
from .pdu import (
    CacheReset,
    CacheResponse,
    EndOfData,
    ErrorReport,
    Pdu,
    PduDecodeError,
    PrefixPdu,
    ResetQuery,
    SerialNotify,
    SerialQuery,
    decode_pdus,
    encode_pdu,
)

__all__ = ["RouterState", "RtrRouterClient"]


class RouterState(enum.Enum):
    IDLE = "idle"              # connected, nothing requested yet
    SYNCING = "syncing"        # awaiting/receiving a data burst
    SYNCED = "synced"          # up to date as of self.serial
    FAILED = "failed"          # protocol error; session dead


class RtrRouterClient:
    """One router's RTR session and VRP table."""

    def __init__(self, pipe: DuplexPipe):
        self.pipe = pipe
        self.state = RouterState.IDLE
        self.serial = 0
        self.session_id: int | None = None
        self._vrps: set[VRP] = set()
        # PDU application is order-sensitive: the same VRP may be announced
        # at one serial and withdrawn at a later one within a single burst.
        self._pending: list[tuple[bool, VRP]] = []
        self._burst_is_reset = False
        self._receive_buffer = b""
        self.errors: list[str] = []

    # -- queries -----------------------------------------------------------

    def vrp_set(self) -> VrpSet:
        """The router's current validated-ROA table."""
        return VrpSet(self._vrps)

    @property
    def vrp_count(self) -> int:
        return len(self._vrps)

    # -- actions ------------------------------------------------------------

    def connect(self) -> None:
        """Start the session with a full reset synchronization."""
        self._burst_is_reset = True
        self._send(ResetQuery())
        self.state = RouterState.SYNCING

    def poll(self) -> None:
        """Ask for changes since our serial (routers also poll on a timer)."""
        if self.session_id is None:
            self.connect()
            return
        self._send(SerialQuery(self.session_id, self.serial))
        self._burst_is_reset = False
        self.state = RouterState.SYNCING

    def process(self) -> None:
        """Consume everything the cache has sent since the last call."""
        if self.state is RouterState.FAILED:
            return
        try:
            data = self._receive_buffer + self.pipe.to_router.receive()
        except ChannelClosed:
            self._fail("connection closed")
            return
        try:
            pdus, self._receive_buffer = decode_pdus(data)
        except PduDecodeError as exc:
            self._send(ErrorReport(error_code=0, text=str(exc)))
            self._fail(f"undecodable bytes from cache: {exc}")
            return
        for pdu in pdus:
            self._handle(pdu)

    # -- state machine -------------------------------------------------------------

    def _handle(self, pdu: Pdu) -> None:
        if isinstance(pdu, SerialNotify):
            if self.state is RouterState.SYNCED:
                self.session_id = pdu.session_id
                self.poll()
            return
        if isinstance(pdu, CacheResponse):
            if self.session_id is not None and pdu.session_id != self.session_id:
                # Cache restarted with new state: our serial is meaningless.
                self.session_id = pdu.session_id
                self._burst_is_reset = True
            self.session_id = pdu.session_id
            self._pending.clear()
            self.state = RouterState.SYNCING
            return
        if isinstance(pdu, PrefixPdu):
            vrp = VRP(pdu.prefix, pdu.max_length, pdu.asn)
            self._pending.append((pdu.announce, vrp))
            return
        if isinstance(pdu, EndOfData):
            if self._burst_is_reset:
                self._vrps = set()
            for announce, vrp in self._pending:
                if announce:
                    self._vrps.add(vrp)
                else:
                    self._vrps.discard(vrp)
            self._pending.clear()
            self.serial = pdu.serial
            self.session_id = pdu.session_id
            self.state = RouterState.SYNCED
            return
        if isinstance(pdu, CacheReset):
            self._burst_is_reset = True
            self._send(ResetQuery())
            self.state = RouterState.SYNCING
            return
        if isinstance(pdu, ErrorReport):
            self._fail(f"cache error {pdu.error_code}: {pdu.text}")
            return

    def _send(self, pdu: Pdu) -> None:
        try:
            self.pipe.to_cache.send(encode_pdu(pdu))
        except ChannelClosed:
            self._fail("connection closed")

    def _fail(self, reason: str) -> None:
        self.errors.append(reason)
        self.state = RouterState.FAILED
