"""RTR protocol data units (RFC 6810), with real wire encoding.

The RPKI-to-Router protocol is how validated ROA payloads actually reach
BGP speakers: routers do not run path validation themselves — they hold an
RTR session to a relying-party cache and receive the VRP set as a stream
of prefix PDUs.  The paper's Figure 1 arrow from "route validity" into
"BGP" runs over exactly this channel, so the reproduction implements it:
whatever the cache believes (including whatever an authority manipulated
it into believing) is what every attached router enforces.

The wire format follows RFC 6810: an 8-byte header
``(version, pdu_type, session_or_flags, length)`` followed by the body.
Version 0 PDU types:

====  ====================  ==============================================
  0   Serial Notify         cache → router: "new data available"
  1   Serial Query          router → cache: "give me changes since serial"
  2   Reset Query           router → cache: "give me everything"
  3   Cache Response        cache → router: header of a data burst
  4   IPv4 Prefix           one VRP (announce or withdraw)
  6   IPv6 Prefix           one VRP (announce or withdraw)
  7   End of Data           end of burst; carries the new serial
  8   Cache Reset           cache → router: "I can't do incremental; reset"
 10   Error Report          either direction; fatal
====  ====================  ==============================================
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..resources import ASN, Afi, Prefix

__all__ = [
    "PduType",
    "RTR_VERSION",
    "SerialNotify",
    "SerialQuery",
    "ResetQuery",
    "CacheResponse",
    "PrefixPdu",
    "EndOfData",
    "CacheReset",
    "ErrorReport",
    "Pdu",
    "encode_pdu",
    "decode_pdus",
    "PduDecodeError",
]

RTR_VERSION = 0

_HEADER = struct.Struct(">BBHI")  # version, type, session/flags, length


class PduType(enum.IntEnum):
    SERIAL_NOTIFY = 0
    SERIAL_QUERY = 1
    RESET_QUERY = 2
    CACHE_RESPONSE = 3
    IPV4_PREFIX = 4
    IPV6_PREFIX = 6
    END_OF_DATA = 7
    CACHE_RESET = 8
    ERROR_REPORT = 10


class PduDecodeError(Exception):
    """Malformed RTR bytes (bad version, bad length, unknown type)."""


@dataclass(frozen=True)
class SerialNotify:
    session_id: int
    serial: int


@dataclass(frozen=True)
class SerialQuery:
    session_id: int
    serial: int


@dataclass(frozen=True)
class ResetQuery:
    pass


@dataclass(frozen=True)
class CacheResponse:
    session_id: int


@dataclass(frozen=True)
class PrefixPdu:
    """One VRP on the wire: announce (flags bit 0 = 1) or withdraw (= 0)."""

    announce: bool
    prefix: Prefix
    max_length: int
    asn: ASN

    def __post_init__(self) -> None:
        if not self.prefix.length <= self.max_length <= self.prefix.afi.bits:
            raise ValueError(
                f"maxLength {self.max_length} out of range for {self.prefix}"
            )

    @property
    def afi(self) -> Afi:
        return self.prefix.afi


@dataclass(frozen=True)
class EndOfData:
    session_id: int
    serial: int


@dataclass(frozen=True)
class CacheReset:
    pass


@dataclass(frozen=True)
class ErrorReport:
    error_code: int
    text: str = ""


Pdu = (
    SerialNotify | SerialQuery | ResetQuery | CacheResponse
    | PrefixPdu | EndOfData | CacheReset | ErrorReport
)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _packet(pdu_type: PduType, session_or_flags: int, body: bytes) -> bytes:
    return _HEADER.pack(
        RTR_VERSION, pdu_type, session_or_flags, _HEADER.size + len(body)
    ) + body


def encode_pdu(pdu: Pdu) -> bytes:
    """Serialize one PDU to RFC 6810 wire bytes."""
    if isinstance(pdu, SerialNotify):
        return _packet(PduType.SERIAL_NOTIFY, pdu.session_id,
                       struct.pack(">I", pdu.serial))
    if isinstance(pdu, SerialQuery):
        return _packet(PduType.SERIAL_QUERY, pdu.session_id,
                       struct.pack(">I", pdu.serial))
    if isinstance(pdu, ResetQuery):
        return _packet(PduType.RESET_QUERY, 0, b"")
    if isinstance(pdu, CacheResponse):
        return _packet(PduType.CACHE_RESPONSE, pdu.session_id, b"")
    if isinstance(pdu, PrefixPdu):
        flags = 1 if pdu.announce else 0
        address_bytes = pdu.prefix.afi.bits // 8
        body = struct.pack(
            ">BBBB", flags, pdu.prefix.length, pdu.max_length, 0
        ) + pdu.prefix.network.to_bytes(address_bytes, "big") + struct.pack(
            ">I", int(pdu.asn)
        )
        pdu_type = (
            PduType.IPV4_PREFIX if pdu.prefix.afi is Afi.IPV4
            else PduType.IPV6_PREFIX
        )
        return _packet(pdu_type, 0, body)
    if isinstance(pdu, EndOfData):
        return _packet(PduType.END_OF_DATA, pdu.session_id,
                       struct.pack(">I", pdu.serial))
    if isinstance(pdu, CacheReset):
        return _packet(PduType.CACHE_RESET, 0, b"")
    if isinstance(pdu, ErrorReport):
        text = pdu.text.encode("utf-8")
        body = struct.pack(">I", 0) + struct.pack(">I", len(text)) + text
        return _packet(PduType.ERROR_REPORT, pdu.error_code, body)
    raise TypeError(f"not a PDU: {pdu!r}")


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def decode_pdus(data: bytes) -> tuple[list[Pdu], bytes]:
    """Decode as many complete PDUs as *data* contains.

    Returns ``(pdus, remainder)`` — the remainder is a partial trailing
    PDU to be retried once more bytes arrive (stream semantics, like the
    TCP connection RTR really runs over).
    """
    pdus: list[Pdu] = []
    offset = 0
    while len(data) - offset >= _HEADER.size:
        version, pdu_type, session_or_flags, length = _HEADER.unpack_from(
            data, offset
        )
        if version != RTR_VERSION:
            raise PduDecodeError(f"unsupported RTR version {version}")
        if length < _HEADER.size:
            raise PduDecodeError(f"impossible PDU length {length}")
        if len(data) - offset < length:
            break  # incomplete PDU; wait for more bytes
        body = data[offset + _HEADER.size : offset + length]
        pdus.append(_decode_one(pdu_type, session_or_flags, body))
        offset += length
    return pdus, data[offset:]


def _decode_one(pdu_type: int, session_or_flags: int, body: bytes) -> Pdu:
    try:
        kind = PduType(pdu_type)
    except ValueError:
        raise PduDecodeError(f"unknown PDU type {pdu_type}") from None

    if kind is PduType.SERIAL_NOTIFY:
        return SerialNotify(session_or_flags, _u32(body))
    if kind is PduType.SERIAL_QUERY:
        return SerialQuery(session_or_flags, _u32(body))
    if kind is PduType.RESET_QUERY:
        _expect_empty(kind, body)
        return ResetQuery()
    if kind is PduType.CACHE_RESPONSE:
        _expect_empty(kind, body)
        return CacheResponse(session_or_flags)
    if kind in (PduType.IPV4_PREFIX, PduType.IPV6_PREFIX):
        afi = Afi.IPV4 if kind is PduType.IPV4_PREFIX else Afi.IPV6
        address_bytes = afi.bits // 8
        expected = 4 + address_bytes + 4
        if len(body) != expected:
            raise PduDecodeError(
                f"{kind.name} body must be {expected} bytes, got {len(body)}"
            )
        flags, length, max_length, _zero = struct.unpack_from(">BBBB", body)
        network = int.from_bytes(body[4 : 4 + address_bytes], "big")
        asn_value = _u32(body[4 + address_bytes :])
        try:
            prefix = Prefix(afi, network, length)
            return PrefixPdu(
                announce=bool(flags & 1),
                prefix=prefix,
                max_length=max_length,
                asn=ASN(asn_value),
            )
        except ValueError as exc:
            raise PduDecodeError(f"bad prefix PDU: {exc}") from exc
    if kind is PduType.END_OF_DATA:
        return EndOfData(session_or_flags, _u32(body))
    if kind is PduType.CACHE_RESET:
        _expect_empty(kind, body)
        return CacheReset()
    if kind is PduType.ERROR_REPORT:
        if len(body) < 8:
            raise PduDecodeError("truncated error report")
        text_length = _u32(body[4:8])
        text = body[8 : 8 + text_length].decode("utf-8", errors="replace")
        return ErrorReport(error_code=session_or_flags, text=text)
    raise AssertionError(f"unhandled {kind}")  # pragma: no cover


def _u32(body: bytes) -> int:
    if len(body) < 4:
        raise PduDecodeError("truncated 32-bit field")
    return struct.unpack_from(">I", body)[0]


def _expect_empty(kind: PduType, body: bytes) -> None:
    if body:
        raise PduDecodeError(f"{kind.name} must have an empty body")
