"""Ghostbusters records (RFC 6493): who you gonna call?

A Ghostbusters record is a signed vCard published alongside a CA's other
objects, carrying human contact information.  It exists for exactly the
situations this reproduction is about: when validation breaks — a ROA
whacked, a repository dark, a certificate shrunk — the relying party or
monitor needs someone to phone.  The monitor layer attaches these contacts
to its alerts, and the paper's "little recourse" discussion (Section 3)
is in practice mediated through them.

Like a ROA, a record is signed by a one-time EE certificate issued by the
publishing CA.
"""

from __future__ import annotations

from ..crypto import KeyPair, encode
from .cert import EECertificate
from .errors import ObjectFormatError
from .objects import SignedObject

__all__ = ["GhostbustersRecord", "build_ghostbusters", "GHOSTBUSTERS_FILE"]

GHOSTBUSTERS_FILE = "ca.gbr"

_ALLOWED_FIELDS = frozenset({"fn", "org", "email", "tel", "adr"})


class GhostbustersRecord(SignedObject):
    """A signed contact card for one authority."""

    TYPE = "gbr"

    __slots__ = ("_ee_cert",)

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None,
                 ee_cert: EECertificate | None = None):
        super().__init__(payload, signature, encoded_payload=encoded_payload)
        vcard = payload.get("vcard")
        if not isinstance(vcard, dict) or "fn" not in vcard:
            raise ObjectFormatError("ghostbusters record needs a vCard with fn")
        unknown = set(vcard) - _ALLOWED_FIELDS
        if unknown:
            raise ObjectFormatError(f"unknown vCard fields: {sorted(unknown)}")
        if ee_cert is None:
            ee_payload, ee_signature, ee_encoded = SignedObject.split_wire(
                payload["ee_cert"]
            )
            ee_cert = EECertificate(
                ee_payload, ee_signature, encoded_payload=ee_encoded
            )
        self._ee_cert = ee_cert

    @property
    def vcard(self) -> dict[str, str]:
        return dict(self.payload["vcard"])

    @property
    def full_name(self) -> str:
        """The vCard FN field — the responsible party's name."""
        return self.payload["vcard"]["fn"]

    @property
    def email(self) -> str | None:
        return self.payload["vcard"].get("email")

    @property
    def ee_cert(self) -> EECertificate:
        return self._ee_cert

    def __repr__(self) -> str:
        return f"GhostbustersRecord(fn={self.full_name!r})"


def build_ghostbusters(
    *,
    ee_key: KeyPair,
    ee_cert: EECertificate,
    vcard: dict[str, str],
    serial: int,
    not_before: int,
    not_after: int,
) -> GhostbustersRecord:
    """Sign a Ghostbusters record with its EE key."""
    payload = {
        "type": GhostbustersRecord.TYPE,
        "serial": serial,
        "issuer_key_id": ee_cert.subject_key_id,
        "vcard": dict(vcard),
        "ee_cert": ee_cert.to_bytes(),
        "not_before": not_before,
        "not_after": not_after,
    }
    encoded_payload = encode(payload)
    signature = ee_key.sign(encoded_payload)
    return GhostbustersRecord(payload, signature,
                              encoded_payload=encoded_payload,
                              ee_cert=ee_cert)
