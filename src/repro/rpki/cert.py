"""Resource certificates and end-entity certificates (RFC 6487 profile).

A resource certificate (RC) binds a public key to a set of IP and AS
resources and names the repository publication point where the subject
publishes (the SIA pointer — the detail that makes great-grandchild
whacking noisier, Side Effect 4).  An end-entity (EE) certificate is the
one-time-use certificate that signs a single ROA (paper, footnote 3).
"""

from __future__ import annotations

from ..crypto import KeyPair, RsaPublicKey, key_id_of
from ..resources import AsnSet, ResourceSet
from .errors import ObjectFormatError
from .objects import (
    SignedObject,
    asn_set_from_data,
    asn_set_to_data,
    resource_set_from_data,
    resource_set_to_data,
)

__all__ = ["ResourceCertificate", "EECertificate", "build_certificate"]


class _BaseCertificate(SignedObject):
    """Shared accessors for RC and EE certificates."""

    __slots__ = ("_ip_resources", "_as_resources")

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None):
        super().__init__(payload, signature, encoded_payload=encoded_payload)
        self._ip_resources = resource_set_from_data(payload["ip_resources"])
        self._as_resources = asn_set_from_data(payload["as_resources"])

    @property
    def subject(self) -> str:
        """The subject's handle (human-readable authority name)."""
        return self.payload["subject"]

    @property
    def subject_key(self) -> RsaPublicKey:
        return RsaPublicKey.from_dict(self.payload["subject_key"])

    @property
    def subject_key_id(self) -> str:
        return self.payload["subject_key_id"]

    @property
    def ip_resources(self) -> ResourceSet:
        """The IP addresses this certificate binds to the subject key."""
        return self._ip_resources

    @property
    def as_resources(self) -> AsnSet:
        """The AS numbers this certificate binds to the subject key."""
        return self._as_resources

    @property
    def sia(self) -> str:
        """Subject Information Access: URI of the subject's publication
        point — where objects *issued by the subject* are published."""
        return self.payload["sia"]

    @property
    def sia_mirrors(self) -> tuple[str, ...]:
        """Additional publication points carrying the same objects.

        The multiple-publication-points extension (the IETF direction the
        paper cites as a step toward hardening delivery): a relying party
        that cannot reach the primary SIA tries these in order.
        """
        return tuple(self.payload.get("sia_mirrors", []))

    @property
    def all_publication_uris(self) -> tuple[str, ...]:
        """Primary SIA followed by mirrors (empty SIA yields nothing)."""
        if not self.sia:
            return ()
        return (self.sia, *self.sia_mirrors)

    @property
    def crldp(self) -> str:
        """CRL distribution point: URI of the *issuer's* CRL."""
        return self.payload["crldp"]

    @property
    def is_self_signed(self) -> bool:
        """True for trust anchors (issuer key == subject key)."""
        return self.issuer_key_id == self.subject_key_id

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(subject={self.subject!r}, "
            f"serial={self.serial}, ip={self._ip_resources})"
        )


class ResourceCertificate(_BaseCertificate):
    """A CA certificate: the subject may issue further RPKI objects."""

    TYPE = "rc"
    __slots__ = ()


class EECertificate(_BaseCertificate):
    """A one-time-use end-entity certificate (signs exactly one ROA)."""

    TYPE = "ee"
    __slots__ = ()


def build_certificate(
    *,
    issuer_key: KeyPair,
    issuer_key_id: str,
    subject: str,
    subject_key: RsaPublicKey,
    ip_resources: ResourceSet,
    as_resources: AsnSet | None = None,
    serial: int,
    not_before: int,
    not_after: int,
    sia: str,
    sia_mirrors: list[str] | None = None,
    crldp: str,
    is_ca: bool = True,
) -> ResourceCertificate | EECertificate:
    """Sign and return a certificate.

    This is a pure constructor: resource-coverage policy (may the issuer
    actually delegate these resources?) is enforced by the CA engine in
    :mod:`repro.rpki.ca`, not here — a *misbehaving* authority bypasses the
    engine's checks precisely by calling this directly, which is how the
    attack tooling models rogue issuance.
    """
    if not_after < not_before:
        raise ObjectFormatError(
            f"certificate expires ({not_after}) before it starts ({not_before})"
        )
    cls = ResourceCertificate if is_ca else EECertificate
    payload = {
        "type": cls.TYPE,
        "serial": serial,
        "issuer_key_id": issuer_key_id,
        "subject": subject,
        "subject_key": subject_key.to_dict(),
        "subject_key_id": key_id_of(subject_key),
        "ip_resources": resource_set_to_data(ip_resources),
        "as_resources": asn_set_to_data(as_resources or AsnSet.empty()),
        "not_before": not_before,
        "not_after": not_after,
        "sia": sia,
        "sia_mirrors": list(sia_mirrors or []),
        "crldp": crldp,
    }
    from ..crypto import encode  # local import to keep module deps one-way

    encoded_payload = encode(payload)
    signature = issuer_key.sign(encoded_payload)
    return cls(payload, signature, encoded_payload=encoded_payload)
