"""The RPKI object model and certification-authority engine.

Implements the object profiles the paper's analysis manipulates — resource
certificates, EE certificates, ROAs, CRLs, manifests — and the CA engine
that issues, renews, revokes, overwrites, and publishes them.
"""

from .ca import CRL_FILE, MANIFEST_FILE, CertificateAuthority, cert_file_name
from .cert import EECertificate, ResourceCertificate, build_certificate
from .crl import Crl, build_crl
from .ghostbusters import GHOSTBUSTERS_FILE, GhostbustersRecord, build_ghostbusters
from .errors import (
    IssuanceError,
    ObjectFormatError,
    RevocationError,
    RolloverError,
    RpkiError,
)
from .manifest import Manifest, build_manifest
from .objects import SignedObject
from .parse import parse_object
from .publication import InMemoryPublicationPoint, PublicationTarget
from .roa import Roa, RoaPrefix, build_roa

__all__ = [
    "CRL_FILE",
    "GHOSTBUSTERS_FILE",
    "GhostbustersRecord",
    "build_ghostbusters",
    "CertificateAuthority",
    "Crl",
    "EECertificate",
    "InMemoryPublicationPoint",
    "IssuanceError",
    "MANIFEST_FILE",
    "Manifest",
    "ObjectFormatError",
    "PublicationTarget",
    "ResourceCertificate",
    "RevocationError",
    "Roa",
    "RoaPrefix",
    "RolloverError",
    "RpkiError",
    "SignedObject",
    "build_certificate",
    "build_crl",
    "build_manifest",
    "build_roa",
    "cert_file_name",
    "parse_object",
]
