"""Route Origin Authorizations (RFC 6482 profile).

A ROA authorizes one origin AS to announce a set of prefixes, each with an
optional *maxLength*: the ROA ``(63.160.0.0/12-13, AS 1239)`` of Figure 5
authorizes AS 1239 to originate the /12 and any subprefix down to /13.

A ROA is a signed object whose signer is a one-time-use EE certificate;
the EE certificate travels embedded in the ROA (as in CMS), and its IP
resources must cover the ROA's prefixes — the relying party checks both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import KeyPair, encode
from ..resources import ASN, Prefix, ResourceSet
from .cert import EECertificate
from .errors import ObjectFormatError
from .objects import SignedObject, prefix_from_data, prefix_to_data

__all__ = ["RoaPrefix", "Roa", "build_roa"]


@dataclass(frozen=True)
class RoaPrefix:
    """One (prefix, maxLength) entry of a ROA.

    ``max_length`` of ``None`` means "not specified", which RFC 6482
    defines as equivalent to the prefix's own length: only the exact
    prefix is authorized.
    """

    prefix: Prefix
    max_length: int | None = None

    def __post_init__(self) -> None:
        if self.max_length is not None:
            if not self.prefix.length <= self.max_length <= self.prefix.afi.bits:
                raise ObjectFormatError(
                    f"maxLength {self.max_length} invalid for {self.prefix}"
                )

    @property
    def effective_max_length(self) -> int:
        """The maxLength actually in force (prefix length if unspecified)."""
        if self.max_length is None:
            return self.prefix.length
        return self.max_length

    @classmethod
    def parse(cls, text: str) -> "RoaPrefix":
        """Parse the paper's notation: ``"63.160.0.0/12-13"`` or a bare prefix."""
        body, dash, max_text = text.strip().rpartition("-")
        if dash and "/" in body:
            return cls(Prefix.parse(body), int(max_text))
        return cls(Prefix.parse(text))

    def __str__(self) -> str:
        if self.max_length is None or self.max_length == self.prefix.length:
            return str(self.prefix)
        return f"{self.prefix}-{self.max_length}"


class Roa(SignedObject):
    """A signed Route Origin Authorization with its embedded EE certificate."""

    TYPE = "roa"

    __slots__ = ("_prefixes", "_ee_cert")

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None,
                 ee_cert: EECertificate | None = None):
        super().__init__(payload, signature, encoded_payload=encoded_payload)
        self._prefixes = tuple(
            RoaPrefix(prefix_from_data(p), max_length if max_length >= 0 else None)
            for p, max_length in payload["prefixes"]
        )
        if ee_cert is None:
            # Untrusted path (parsing fetched bytes): re-parse the
            # embedded certificate.  Its payload bytes are a slice of
            # the embedded wire form, so no re-encode happens.
            ee_payload, ee_signature, ee_encoded = SignedObject.split_wire(
                payload["ee_cert"]
            )
            ee_cert = EECertificate(
                ee_payload, ee_signature, encoded_payload=ee_encoded
            )
        self._ee_cert = ee_cert

    @property
    def asn(self) -> ASN:
        """The single origin AS this ROA authorizes."""
        return ASN(self.payload["asn"])

    @property
    def prefixes(self) -> tuple[RoaPrefix, ...]:
        return self._prefixes

    @property
    def ee_cert(self) -> EECertificate:
        """The embedded one-time-use EE certificate that signed this ROA."""
        return self._ee_cert

    def resources(self) -> ResourceSet:
        """The address space named by the ROA's prefixes."""
        return ResourceSet.from_prefixes(rp.prefix for rp in self._prefixes)

    def describe(self) -> str:
        """The paper's notation, e.g. ``"(63.174.16.0/20-24, AS17054)"``."""
        prefix_text = ", ".join(str(rp) for rp in self._prefixes)
        return f"({prefix_text}, {self.asn})"

    def __repr__(self) -> str:
        return f"Roa{self.describe()}"


def build_roa(
    *,
    ee_key: KeyPair,
    ee_cert: EECertificate,
    asn: ASN | int,
    prefixes: list[RoaPrefix],
    serial: int,
    not_before: int,
    not_after: int,
) -> Roa:
    """Sign a ROA with its EE key.

    Pure constructor; the CA engine enforces that the EE certificate's
    resources cover the prefixes, and relying parties re-check.
    """
    if not prefixes:
        raise ObjectFormatError("a ROA must name at least one prefix")
    payload = {
        "type": Roa.TYPE,
        "serial": serial,
        "issuer_key_id": ee_cert.subject_key_id,
        "asn": int(asn),
        "prefixes": [
            [prefix_to_data(rp.prefix), -1 if rp.max_length is None else rp.max_length]
            for rp in prefixes
        ],
        "ee_cert": ee_cert.to_bytes(),
        "not_before": not_before,
        "not_after": not_after,
    }
    encoded_payload = encode(payload)
    signature = ee_key.sign(encoded_payload)
    # The builder holds the EE certificate it just embedded — hand the
    # object through so construction skips re-parsing its own bytes.
    return Roa(payload, signature, encoded_payload=encoded_payload,
               ee_cert=ee_cert)
