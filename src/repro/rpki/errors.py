"""Exceptions raised by the RPKI object model and CA engine."""

from __future__ import annotations


class RpkiError(Exception):
    """Base class for all RPKI-layer errors."""


class ObjectFormatError(RpkiError):
    """A serialized RPKI object was malformed."""


class IssuanceError(RpkiError):
    """An authority attempted an issuance it is not entitled to make.

    The defining example: issuing a child certificate (or ROA) for
    resources not covered by the issuer's own certificate — the RPKI's
    principle of least privilege forbids it, and the CA engine enforces
    it at issuance time.
    """


class RevocationError(RpkiError):
    """A revocation referenced an unknown or foreign object."""


class RolloverError(RpkiError):
    """A key rollover was attempted in an invalid state."""
