"""The signed-object core of the model RPKI.

Every RPKI object — resource certificate, EE certificate, ROA, CRL,
manifest — is a canonical payload dictionary plus an RSA signature over its
encoding.  The payload layouts mirror the fields of the production profiles
(RFC 6487 certificates, RFC 6482 ROAs, RFC 5280 CRLs, RFC 6486 manifests)
at the granularity the paper's analysis needs.

Objects are immutable once constructed; "overwriting" an object in a
repository (the stealthy-revocation primitive of Side Effect 2) means
publishing a *different* object under the same file name, never mutating
one in place.
"""

from __future__ import annotations

from typing import Any

from ..crypto import RsaPublicKey, decode, encode, sha256_hex
from ..crypto.encoding import encode_parts, toplevel_spans
from ..resources import (
    AddressRange,
    Afi,
    AsnRange,
    AsnSet,
    Prefix,
    ResourceSet,
)
from ..telemetry import default_registry
from .errors import ObjectFormatError

__all__ = [
    "SignedObject",
    "resource_set_to_data",
    "resource_set_from_data",
    "asn_set_to_data",
    "asn_set_from_data",
    "prefix_to_data",
    "prefix_from_data",
]

# Canonical-bytes memo telemetry.  RPKI objects are immutable, so the
# encoded payload computed at issuance (the bytes the builder signed) or
# at parse time (a slice of the fetched wire form) is *the* canonical
# encoding forever — a miss means a constructor had to re-encode its
# payload from the dictionary.  Bound to the process-global registry at
# import time (the default registry is a permanent singleton, only ever
# reset in place), same as repro.crypto.rsa's counters.
_ENCODE_CACHE_HITS = default_registry().counter(
    "repro_crypto_encode_cache_hits_total",
    help="SignedObject constructions that reused pre-encoded payload bytes",
)
_ENCODE_CACHE_MISSES = default_registry().counter(
    "repro_crypto_encode_cache_misses_total",
    help="SignedObject constructions that had to re-encode their payload",
)


def _restore(cls: type, payload: dict, signature: bytes,
             encoded_payload: bytes) -> "SignedObject":
    """Unpickle entry point: rebuild without re-encoding the payload."""
    return cls(payload, signature, encoded_payload=encoded_payload)


def resource_set_to_data(resources: ResourceSet) -> list:
    """Encode a ResourceSet as ``[[afi, start, end], ...]`` (sorted)."""
    return [[r.afi.value, r.start, r.end] for r in resources.ranges]


def resource_set_from_data(data: Any) -> ResourceSet:
    """Decode the output of :func:`resource_set_to_data`."""
    if not isinstance(data, list):
        raise ObjectFormatError(f"resource set must be a list, got {type(data)}")
    ranges = []
    for item in data:
        try:
            afi_value, start, end = item
            ranges.append(AddressRange(Afi(afi_value), start, end))
        except (TypeError, ValueError) as exc:
            raise ObjectFormatError(f"bad resource range {item!r}: {exc}") from exc
    return ResourceSet(ranges)


def asn_set_to_data(asns: AsnSet) -> list:
    """Encode an AsnSet as ``[[start, end], ...]`` (sorted)."""
    return [[r.start, r.end] for r in asns.ranges]


def asn_set_from_data(data: Any) -> AsnSet:
    """Decode the output of :func:`asn_set_to_data`."""
    if not isinstance(data, list):
        raise ObjectFormatError(f"ASN set must be a list, got {type(data)}")
    ranges = []
    for item in data:
        try:
            start, end = item
            ranges.append(AsnRange(start, end))
        except (TypeError, ValueError) as exc:
            raise ObjectFormatError(f"bad ASN range {item!r}: {exc}") from exc
    return AsnSet(ranges)


def prefix_to_data(prefix: Prefix) -> list:
    """Encode a Prefix as ``[afi, network, length]``."""
    return [prefix.afi.value, prefix.network, prefix.length]


def prefix_from_data(data: Any) -> Prefix:
    """Decode the output of :func:`prefix_to_data`."""
    try:
        afi_value, network, length = data
        return Prefix(Afi(afi_value), network, length)
    except (TypeError, ValueError) as exc:
        raise ObjectFormatError(f"bad prefix {data!r}: {exc}") from exc


class SignedObject:
    """Base class: a canonical payload plus a signature over its encoding.

    Subclasses define ``TYPE`` (the payload's ``"type"`` discriminator) and
    expose typed accessors over ``self.payload``.  Equality and hashing are
    by serialized bytes, so two objects are "the same object" exactly when
    a manifest hash or monitor diff would say so.
    """

    TYPE = ""

    __slots__ = ("_payload", "_signature", "_encoded_payload", "_wire",
                 "_hash_hex")

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None):
        if self.TYPE and payload.get("type") != self.TYPE:
            raise ObjectFormatError(
                f"payload type {payload.get('type')!r} != expected {self.TYPE!r}"
            )
        self._payload = payload
        self._signature = signature
        if encoded_payload is None:
            _ENCODE_CACHE_MISSES.inc()
            encoded_payload = encode(payload)
        else:
            _ENCODE_CACHE_HITS.inc()
        self._encoded_payload = encoded_payload
        # The full wire form is [payload, signature]; with the payload
        # bytes in hand it is a header + concatenation, never a re-encode.
        self._wire = encode_parts(encoded_payload, encode(signature))
        self._hash_hex = sha256_hex(self._wire)

    # -- signing surface -----------------------------------------------------

    @property
    def payload(self) -> dict:
        """The payload dictionary.  Treat as read-only."""
        return self._payload

    @property
    def signature(self) -> bytes:
        return self._signature

    @property
    def signed_bytes(self) -> bytes:
        """The exact bytes the signature covers."""
        return self._encoded_payload

    def verify_signature(self, public_key: RsaPublicKey) -> bool:
        """True iff the signature verifies under *public_key*."""
        return public_key.verify(self._encoded_payload, self._signature)

    # -- wire form -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole object (payload + signature).

        Cached at construction — objects are immutable, so publication,
        manifest hashing, and equality all reuse the same bytes.
        """
        return self._wire

    @classmethod
    def bytes_to_parts(cls, blob: bytes) -> tuple[dict, bytes]:
        """Split a serialized object into (payload, signature).

        Raises :class:`ObjectFormatError` on any structural problem; this
        is the choke point through which every fetched byte string passes,
        so corruption injected by the fault layer surfaces here.
        """
        payload, signature, _encoded_payload = cls.split_wire(blob)
        return payload, signature

    @classmethod
    def split_wire(cls, blob: bytes) -> tuple[dict, bytes, bytes]:
        """Split a serialized object into (payload, signature, payload bytes).

        The third element is the payload's exact canonical encoding — a
        slice of *blob* — suitable for the ``encoded_payload`` constructor
        argument, so parsing never re-encodes what it just decoded.
        """
        try:
            decoded = decode(blob)
        except Exception as exc:
            raise ObjectFormatError(f"undecodable object: {exc}") from exc
        if (
            not isinstance(decoded, list)
            or len(decoded) != 2
            or not isinstance(decoded[0], dict)
            or not isinstance(decoded[1], bytes)
        ):
            raise ObjectFormatError("object is not [payload, signature]")
        # decode() proved blob is a well-formed two-item list, so the
        # span walk cannot fail; item 0's span is the payload's bytes.
        start, end = toplevel_spans(blob)[0]
        return decoded[0], decoded[1], blob[start:end]

    @property
    def hash_hex(self) -> str:
        """SHA-256 of the serialized object — the manifest entry value."""
        return self._hash_hex

    # -- common payload fields ----------------------------------------------------

    @property
    def serial(self) -> int:
        return self._payload["serial"]

    @property
    def issuer_key_id(self) -> str:
        """Key identifier of the signing authority."""
        return self._payload["issuer_key_id"]

    @property
    def not_before(self) -> int:
        return self._payload["not_before"]

    @property
    def not_after(self) -> int:
        return self._payload["not_after"]

    def is_current(self, now: int) -> bool:
        """True iff *now* falls inside the validity window."""
        return self.not_before <= now <= self.not_after

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedObject):
            return NotImplemented
        return self._wire == other._wire

    def __hash__(self) -> int:
        return hash(self._hash_hex)

    def __reduce__(self):
        # Ship the cached payload encoding with the pickle so worker-pool
        # round trips rebuild the object without re-encoding it.
        return (_restore, (type(self), self._payload, self._signature,
                           self._encoded_payload))
