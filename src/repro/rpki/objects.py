"""The signed-object core of the model RPKI.

Every RPKI object — resource certificate, EE certificate, ROA, CRL,
manifest — is a canonical payload dictionary plus an RSA signature over its
encoding.  The payload layouts mirror the fields of the production profiles
(RFC 6487 certificates, RFC 6482 ROAs, RFC 5280 CRLs, RFC 6486 manifests)
at the granularity the paper's analysis needs.

Objects are immutable once constructed; "overwriting" an object in a
repository (the stealthy-revocation primitive of Side Effect 2) means
publishing a *different* object under the same file name, never mutating
one in place.
"""

from __future__ import annotations

from typing import Any

from ..crypto import RsaPublicKey, decode, encode, sha256_hex
from ..resources import (
    AddressRange,
    Afi,
    AsnRange,
    AsnSet,
    Prefix,
    ResourceSet,
)
from .errors import ObjectFormatError

__all__ = [
    "SignedObject",
    "resource_set_to_data",
    "resource_set_from_data",
    "asn_set_to_data",
    "asn_set_from_data",
    "prefix_to_data",
    "prefix_from_data",
]


def resource_set_to_data(resources: ResourceSet) -> list:
    """Encode a ResourceSet as ``[[afi, start, end], ...]`` (sorted)."""
    return [[r.afi.value, r.start, r.end] for r in resources.ranges]


def resource_set_from_data(data: Any) -> ResourceSet:
    """Decode the output of :func:`resource_set_to_data`."""
    if not isinstance(data, list):
        raise ObjectFormatError(f"resource set must be a list, got {type(data)}")
    ranges = []
    for item in data:
        try:
            afi_value, start, end = item
            ranges.append(AddressRange(Afi(afi_value), start, end))
        except (TypeError, ValueError) as exc:
            raise ObjectFormatError(f"bad resource range {item!r}: {exc}") from exc
    return ResourceSet(ranges)


def asn_set_to_data(asns: AsnSet) -> list:
    """Encode an AsnSet as ``[[start, end], ...]`` (sorted)."""
    return [[r.start, r.end] for r in asns.ranges]


def asn_set_from_data(data: Any) -> AsnSet:
    """Decode the output of :func:`asn_set_to_data`."""
    if not isinstance(data, list):
        raise ObjectFormatError(f"ASN set must be a list, got {type(data)}")
    ranges = []
    for item in data:
        try:
            start, end = item
            ranges.append(AsnRange(start, end))
        except (TypeError, ValueError) as exc:
            raise ObjectFormatError(f"bad ASN range {item!r}: {exc}") from exc
    return AsnSet(ranges)


def prefix_to_data(prefix: Prefix) -> list:
    """Encode a Prefix as ``[afi, network, length]``."""
    return [prefix.afi.value, prefix.network, prefix.length]


def prefix_from_data(data: Any) -> Prefix:
    """Decode the output of :func:`prefix_to_data`."""
    try:
        afi_value, network, length = data
        return Prefix(Afi(afi_value), network, length)
    except (TypeError, ValueError) as exc:
        raise ObjectFormatError(f"bad prefix {data!r}: {exc}") from exc


class SignedObject:
    """Base class: a canonical payload plus a signature over its encoding.

    Subclasses define ``TYPE`` (the payload's ``"type"`` discriminator) and
    expose typed accessors over ``self.payload``.  Equality and hashing are
    by serialized bytes, so two objects are "the same object" exactly when
    a manifest hash or monitor diff would say so.
    """

    TYPE = ""

    __slots__ = ("_payload", "_signature", "_encoded_payload", "_hash_hex")

    def __init__(self, payload: dict, signature: bytes):
        if self.TYPE and payload.get("type") != self.TYPE:
            raise ObjectFormatError(
                f"payload type {payload.get('type')!r} != expected {self.TYPE!r}"
            )
        self._payload = payload
        self._signature = signature
        self._encoded_payload = encode(payload)
        self._hash_hex = sha256_hex(self.to_bytes())

    # -- signing surface -----------------------------------------------------

    @property
    def payload(self) -> dict:
        """The payload dictionary.  Treat as read-only."""
        return self._payload

    @property
    def signature(self) -> bytes:
        return self._signature

    @property
    def signed_bytes(self) -> bytes:
        """The exact bytes the signature covers."""
        return self._encoded_payload

    def verify_signature(self, public_key: RsaPublicKey) -> bool:
        """True iff the signature verifies under *public_key*."""
        return public_key.verify(self._encoded_payload, self._signature)

    # -- wire form -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole object (payload + signature)."""
        return encode([self._payload, self._signature])

    @classmethod
    def bytes_to_parts(cls, blob: bytes) -> tuple[dict, bytes]:
        """Split a serialized object into (payload, signature).

        Raises :class:`ObjectFormatError` on any structural problem; this
        is the choke point through which every fetched byte string passes,
        so corruption injected by the fault layer surfaces here.
        """
        try:
            decoded = decode(blob)
        except Exception as exc:
            raise ObjectFormatError(f"undecodable object: {exc}") from exc
        if (
            not isinstance(decoded, list)
            or len(decoded) != 2
            or not isinstance(decoded[0], dict)
            or not isinstance(decoded[1], bytes)
        ):
            raise ObjectFormatError("object is not [payload, signature]")
        return decoded[0], decoded[1]

    @property
    def hash_hex(self) -> str:
        """SHA-256 of the serialized object — the manifest entry value."""
        return self._hash_hex

    # -- common payload fields ----------------------------------------------------

    @property
    def serial(self) -> int:
        return self._payload["serial"]

    @property
    def issuer_key_id(self) -> str:
        """Key identifier of the signing authority."""
        return self._payload["issuer_key_id"]

    @property
    def not_before(self) -> int:
        return self._payload["not_before"]

    @property
    def not_after(self) -> int:
        return self._payload["not_after"]

    def is_current(self, now: int) -> bool:
        """True iff *now* falls inside the validity window."""
        return self.not_before <= now <= self.not_after

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedObject):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self._hash_hex)
