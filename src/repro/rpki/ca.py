"""The certification-authority engine.

A :class:`CertificateAuthority` is one authority in the RPKI hierarchy: it
holds a key, a certificate from its parent (or a self-signed trust-anchor
certificate), and a publication point it fully controls.  It can:

- issue and renew child resource certificates and ROAs (with the
  least-privilege coverage check the RPKI mandates);
- revoke transparently via its CRL, or *stealthily* by deleting or
  overwriting published files (Side Effects 1-2);
- overwrite a child's certificate with one for a smaller resource set —
  the primitive behind targeted grandchild whacking (Side Effect 3);
- reissue a descendant's ROA as its own ("make-before-break", Figure 3);
- roll its key per RFC 6489, which exercises the persistent-name design
  decision the paper ties to overwritability.

Every mutation republishes the CRL and manifest, so the publication point
is always internally consistent unless a caller explicitly asks for an
inconsistent state (fault injection for Side Effect 6 experiments).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from ..crypto import KeyFactory, KeyPair, RsaPublicKey
from ..resources import ASN, AsnSet, ResourceSet
from ..simtime import Clock, DAY, YEAR
from .cert import EECertificate, ResourceCertificate, build_certificate
from .crl import build_crl
from .errors import IssuanceError, RevocationError, RolloverError
from .ghostbusters import GHOSTBUSTERS_FILE, GhostbustersRecord, build_ghostbusters
from .manifest import build_manifest
from .publication import InMemoryPublicationPoint, PublicationTarget
from .roa import Roa, RoaPrefix, build_roa

__all__ = ["CertificateAuthority", "CRL_FILE", "MANIFEST_FILE"]

CRL_FILE = "ca.crl"
MANIFEST_FILE = "ca.mft"

_DEFAULT_RC_VALIDITY = YEAR
_DEFAULT_ROA_VALIDITY = 90 * DAY
_DEFAULT_CRL_WINDOW = DAY


class CertificateAuthority:
    """One RPKI authority: key, certificate, publication point, issuance.

    Construction goes through :meth:`create_trust_anchor` for roots or
    ``parent.issue_child_authority(...)`` for everyone else; the bare
    constructor wires pre-built state together.
    """

    def __init__(
        self,
        *,
        handle: str,
        key: KeyPair,
        certificate: ResourceCertificate,
        clock: Clock,
        key_factory: KeyFactory,
        publication_point: PublicationTarget | None = None,
        parent: "CertificateAuthority | None" = None,
    ):
        self.handle = handle
        self._key = key
        self._certificate = certificate
        self._clock = clock
        self._key_factory = key_factory
        self._parent = parent
        self.publication_point: PublicationTarget = (
            publication_point if publication_point is not None
            else InMemoryPublicationPoint()
        )
        self._next_serial = 1
        self._revoked_serials: set[int] = set()
        # Mirror publication points (multiple-publication-points support):
        # (uri, target) pairs that publish() keeps in sync with the primary.
        self._mirrors: list[tuple[str, PublicationTarget]] = []
        # Current (latest) issued objects, by publication file name.
        self._issued_certs: dict[str, ResourceCertificate] = {}
        self._issued_roas: dict[str, Roa] = {}
        self._contact: GhostbustersRecord | None = None
        self._children: dict[str, CertificateAuthority] = {}
        # Deferred-publication state (see deferred_publication()): while
        # deferred, publish() only records that a sync is owed.
        self._publish_deferred = False
        self._publish_pending = False
        self.publish()

    # -- construction -------------------------------------------------------

    @classmethod
    def create_trust_anchor(
        cls,
        *,
        handle: str,
        ip_resources: ResourceSet,
        as_resources: AsnSet | None = None,
        clock: Clock,
        key_factory: KeyFactory,
        sia: str = "",
        publication_point: PublicationTarget | None = None,
        validity: int = 2 * YEAR,
    ) -> "CertificateAuthority":
        """Create a root authority with a self-signed certificate.

        In production the root will "likely be the five RIRs or IANA"
        (paper, footnote 2); the model generator creates whichever the
        scenario wants.
        """
        key = key_factory.next_keypair()
        now = clock.now
        certificate = build_certificate(
            issuer_key=key,
            issuer_key_id=key.key_id,
            subject=handle,
            subject_key=key.public,
            ip_resources=ip_resources,
            as_resources=as_resources,
            serial=0,
            not_before=now,
            not_after=now + validity,
            sia=sia or f"rsync://{handle.lower()}/repo/",
            crldp="",
            is_ca=True,
        )
        return cls(
            handle=handle,
            key=key,
            certificate=certificate,
            clock=clock,
            key_factory=key_factory,
            publication_point=publication_point,
        )

    # -- identity --------------------------------------------------------------

    @property
    def key(self) -> KeyPair:
        return self._key

    @property
    def key_id(self) -> str:
        return self._key.key_id

    @property
    def certificate(self) -> ResourceCertificate:
        """This authority's own RC (issued by its parent, or self-signed)."""
        return self._certificate

    @certificate.setter
    def certificate(self, new_cert: ResourceCertificate) -> None:
        """Installed by the parent on renewal/overwrite/rollover."""
        self._certificate = new_cert

    @property
    def parent(self) -> "CertificateAuthority | None":
        return self._parent

    @property
    def resources(self) -> ResourceSet:
        """The IP resources this authority currently holds."""
        return self._certificate.ip_resources

    @property
    def sia(self) -> str:
        return self._certificate.sia

    @property
    def crl_uri(self) -> str:
        return self.sia + CRL_FILE

    def children(self) -> Iterator["CertificateAuthority"]:
        """Child *authorities* created through this engine."""
        return iter(self._children.values())

    def find_descendant(self, handle: str) -> "CertificateAuthority | None":
        """Depth-first search of the authority subtree by handle."""
        if self.handle == handle:
            return self
        for child in self._children.values():
            found = child.find_descendant(handle)
            if found is not None:
                return found
        return None

    # -- issued-object views ------------------------------------------------------

    @property
    def issued_certs(self) -> dict[str, ResourceCertificate]:
        """Current child RCs by publication file name."""
        return dict(self._issued_certs)

    @property
    def issued_roas(self) -> dict[str, Roa]:
        """Current ROAs by publication file name."""
        return dict(self._issued_roas)

    def roa_named(self, name: str) -> Roa:
        try:
            return self._issued_roas[name]
        except KeyError:
            raise RevocationError(f"{self.handle} has no ROA named {name!r}") from None

    def find_roa(self, prefix_text: str, asn: ASN | int) -> tuple[str, Roa] | None:
        """Find an issued ROA by the paper's (prefix[-maxlen], ASN) notation."""
        wanted = RoaPrefix.parse(prefix_text)
        wanted_asn = ASN(int(asn))
        for name, roa in self._issued_roas.items():
            if roa.asn == wanted_asn and wanted in roa.prefixes:
                return name, roa
        return None

    # -- serials --------------------------------------------------------------------

    def _take_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    # -- issuance ---------------------------------------------------------------------

    def issue_child_authority(
        self,
        handle: str,
        ip_resources: ResourceSet,
        *,
        as_resources: AsnSet | None = None,
        sia: str | None = None,
        validity: int = _DEFAULT_RC_VALIDITY,
        publication_point: PublicationTarget | None = None,
    ) -> "CertificateAuthority":
        """Create a child authority: new key, new RC, new publication point.

        This is the suballocation step of Figure 2 (ARIN → Sprint →
        Continental Broadband).  Raises :class:`IssuanceError` if the
        requested resources are not covered by this authority's own
        certificate — the least-privilege rule.
        """
        child_key = self._key_factory.next_keypair()
        child_sia = sia or f"{self.sia}{handle.lower()}/"
        certificate = self._issue_rc(
            subject=handle,
            subject_public_key=child_key.public,
            ip_resources=ip_resources,
            as_resources=as_resources,
            sia=child_sia,
            validity=validity,
        )
        child = CertificateAuthority(
            handle=handle,
            key=child_key,
            certificate=certificate,
            clock=self._clock,
            key_factory=self._key_factory,
            publication_point=publication_point,
            parent=self,
        )
        self._children[child.key_id] = child
        return child

    def _issue_rc(
        self,
        *,
        subject: str,
        subject_public_key: RsaPublicKey,
        ip_resources: ResourceSet,
        as_resources: AsnSet | None,
        sia: str,
        sia_mirrors: list[str] | None = None,
        validity: int,
        enforce_coverage: bool = True,
    ) -> ResourceCertificate:
        """Issue (or reissue) a child RC and publish it."""
        if enforce_coverage:
            self._require_coverage(ip_resources, as_resources)
        now = self._clock.now
        certificate = build_certificate(
            issuer_key=self._key,
            issuer_key_id=self.key_id,
            subject=subject,
            subject_key=subject_public_key,
            ip_resources=ip_resources,
            as_resources=as_resources,
            serial=self._take_serial(),
            not_before=now,
            not_after=now + validity,
            sia=sia,
            sia_mirrors=sia_mirrors,
            crldp=self.crl_uri,
            is_ca=True,
        )
        assert isinstance(certificate, ResourceCertificate)
        name = cert_file_name(certificate)
        self._issued_certs[name] = certificate
        self.publish()
        return certificate

    def _require_coverage(
        self, ip_resources: ResourceSet, as_resources: AsnSet | None
    ) -> None:
        if not self.resources.covers(ip_resources):
            raise IssuanceError(
                f"{self.handle} holds {self.resources} and cannot delegate "
                f"{ip_resources}"
            )
        if as_resources is not None and not as_resources.is_empty():
            if not self._certificate.as_resources.covers(as_resources):
                raise IssuanceError(
                    f"{self.handle} cannot delegate AS resources {as_resources}"
                )

    def issue_roa(
        self,
        asn: ASN | int,
        prefixes: list[RoaPrefix] | list[str] | str,
        *,
        name: str | None = None,
        validity: int = _DEFAULT_ROA_VALIDITY,
        ee_key: KeyPair | None = None,
    ) -> tuple[str, Roa]:
        """Issue a ROA authorizing *asn* to originate *prefixes*.

        Accepts the paper's string notation directly::

            sprint.issue_roa(1239, "63.160.0.0/12-13")

        Returns ``(file_name, roa)``.  The EE certificate is generated
        here (one-time-use, resources exactly the ROA's prefixes) and
        embedded in the ROA.  Pass *ee_key* to reuse a keypair across
        many EE certificates — validation only checks issuer linkage and
        the signature, so bulk world generation shares one EE key per
        authority instead of generating one per ROA.
        """
        roa_prefixes = _coerce_roa_prefixes(prefixes)
        roa_resources = ResourceSet.from_prefixes(rp.prefix for rp in roa_prefixes)
        self._require_coverage(roa_resources, None)

        now = self._clock.now
        if ee_key is None:
            ee_key = self._key_factory.next_keypair()
        ee_serial = self._take_serial()
        ee_cert = build_certificate(
            issuer_key=self._key,
            issuer_key_id=self.key_id,
            subject=f"{self.handle}-ee-{ee_serial}",
            subject_key=ee_key.public,
            ip_resources=roa_resources,
            as_resources=None,
            serial=ee_serial,
            not_before=now,
            not_after=now + validity,
            sia="",
            crldp=self.crl_uri,
            is_ca=False,
        )
        assert isinstance(ee_cert, EECertificate)
        roa_serial = self._take_serial()
        roa = build_roa(
            ee_key=ee_key,
            ee_cert=ee_cert,
            asn=asn,
            prefixes=roa_prefixes,
            serial=roa_serial,
            not_before=now,
            not_after=now + validity,
        )
        file_name = name or f"roa-{roa_serial}.roa"
        self._issued_roas[file_name] = roa
        self.publish()
        return file_name, roa

    def renew_roa(self, name: str, *, validity: int = _DEFAULT_ROA_VALIDITY) -> Roa:
        """Reissue the ROA under the same file name with a fresh window.

        Persistent names make renewal an overwrite — the design decision
        ("objects can be overwritten") that also enables stealthy
        revocation.
        """
        old = self.roa_named(name)
        prefixes = list(old.prefixes)
        # Check coverage before withdrawing anything: a renewal that the
        # authority is no longer entitled to make must leave the old object
        # in place (it fails validation on its own, but that is the relying
        # party's judgement, not ours to preempt).
        roa_resources = ResourceSet.from_prefixes(rp.prefix for rp in prefixes)
        self._require_coverage(roa_resources, None)
        del self._issued_roas[name]
        _, renewed = self.issue_roa(old.asn, prefixes, name=name, validity=validity)
        return renewed

    def set_contact(
        self,
        vcard: dict[str, str],
        *,
        validity: int = _DEFAULT_RC_VALIDITY,
    ) -> GhostbustersRecord:
        """Publish a Ghostbusters record (RFC 6493) with contact info.

        ``vcard`` needs at least ``fn``; ``org``, ``email``, ``tel`` and
        ``adr`` are also understood.
        """
        now = self._clock.now
        ee_key = self._key_factory.next_keypair()
        ee_serial = self._take_serial()
        ee_cert = build_certificate(
            issuer_key=self._key,
            issuer_key_id=self.key_id,
            subject=f"{self.handle}-gbr-ee-{ee_serial}",
            subject_key=ee_key.public,
            ip_resources=ResourceSet.empty(),
            as_resources=None,
            serial=ee_serial,
            not_before=now,
            not_after=now + validity,
            sia="",
            crldp=self.crl_uri,
            is_ca=False,
        )
        assert isinstance(ee_cert, EECertificate)
        record = build_ghostbusters(
            ee_key=ee_key,
            ee_cert=ee_cert,
            vcard=vcard,
            serial=self._take_serial(),
            not_before=now,
            not_after=now + validity,
        )
        self._contact = record
        self.publish()
        return record

    @property
    def contact(self) -> GhostbustersRecord | None:
        return self._contact

    # -- revocation: the transparent channel ------------------------------------------

    def revoke_cert(self, certificate: ResourceCertificate) -> None:
        """Transparently revoke a child RC: CRL entry + file withdrawal.

        This is the blunt instrument of Section 3.1 — it invalidates the
        entire subtree below the child.
        """
        name = cert_file_name(certificate)
        if self._issued_certs.get(name) != certificate:
            raise RevocationError(
                f"{self.handle} did not issue (or no longer publishes) "
                f"certificate serial {certificate.serial}"
            )
        self._revoked_serials.add(certificate.serial)
        del self._issued_certs[name]
        self.publish()

    def revoke_roa(self, name: str) -> None:
        """Transparently revoke a ROA (via its EE cert serial) and withdraw it."""
        roa = self.roa_named(name)
        self._revoked_serials.add(roa.ee_cert.serial)
        del self._issued_roas[name]
        self.publish()

    # -- revocation: the stealthy channels (Side Effect 2) ------------------------------

    def delete_object(self, name: str) -> None:
        """Silently drop a published object: no CRL entry, manifest updated.

        "An authority can delete any ROA or RC it issued from its
        repository" — the deletion is visible only as churn.
        """
        self._issued_certs.pop(name, None)
        self._issued_roas.pop(name, None)
        self.publish()

    def overwrite_child_cert(
        self,
        child_key_id: str,
        new_ip_resources: ResourceSet,
        *,
        validity: int = _DEFAULT_RC_VALIDITY,
    ) -> ResourceCertificate:
        """Overwrite a child's RC with one for different (usually smaller)
        resources — same subject, same key, same file name, new serial.

        This is the grandchild-whacking primitive (Side Effect 3): shrink
        the child's certificate so it no longer covers the target ROA.  No
        CRL entry is written; the old certificate simply vanishes under
        the persistent name.
        """
        old = self._find_issued_cert_by_key_id(child_key_id)
        child = self._children.get(child_key_id)
        new_cert = self._issue_rc(
            subject=old.subject,
            subject_public_key=old.subject_key,
            ip_resources=new_ip_resources,
            as_resources=old.as_resources,
            sia=old.sia,
            sia_mirrors=list(old.sia_mirrors),
            validity=validity,
        )
        if child is not None:
            child.certificate = new_cert
        return new_cert

    def _find_issued_cert_by_key_id(self, child_key_id: str) -> ResourceCertificate:
        for certificate in self._issued_certs.values():
            if certificate.subject_key_id == child_key_id:
                return certificate
        raise RevocationError(
            f"{self.handle} publishes no certificate for key {child_key_id!r}"
        )

    # -- key rollover (RFC 6489) ----------------------------------------------------------

    def roll_key(self) -> None:
        """Perform a key rollover: new key, reissued RC from the parent,
        and reissuance of every current child RC and ROA under the new key.

        Trust anchors re-self-sign.  Publication file names for the CA's
        own products stay stable (they are keyed by *subject*, not issuer),
        which is exactly why the RPKI allows overwriting.
        """
        if self._parent is None and not self._certificate.is_self_signed:
            raise RolloverError(f"{self.handle} has no parent to re-certify it")
        new_key = self._key_factory.next_keypair()
        old_certs = list(self._issued_certs.values())
        old_roas = dict(self._issued_roas)

        if self._parent is not None:
            parent = self._parent
            # Parent reissues our RC for the new key under a new file name
            # (the name contains the subject key id) and withdraws the old.
            old_name = cert_file_name(self._certificate)
            parent._issued_certs.pop(old_name, None)
            parent._children.pop(self._key.key_id, None)
            self._key = new_key
            parent._children[new_key.key_id] = self
            self._certificate = parent._issue_rc(
                subject=self.handle,
                subject_public_key=new_key.public,
                ip_resources=self._certificate.ip_resources,
                as_resources=self._certificate.as_resources,
                sia=self._certificate.sia,
                sia_mirrors=list(self._certificate.sia_mirrors),
                validity=_DEFAULT_RC_VALIDITY,
            )
        else:
            now = self._clock.now
            self._key = new_key
            certificate = build_certificate(
                issuer_key=new_key,
                issuer_key_id=new_key.key_id,
                subject=self.handle,
                subject_key=new_key.public,
                ip_resources=self._certificate.ip_resources,
                as_resources=self._certificate.as_resources,
                serial=self._take_serial(),
                not_before=now,
                not_after=now + 2 * YEAR,
                sia=self._certificate.sia,
                crldp="",
                is_ca=True,
            )
            assert isinstance(certificate, ResourceCertificate)
            self._certificate = certificate

        # Reissue all current products under the new key.
        self._issued_certs.clear()
        for old_cert in old_certs:
            child = self._children.get(old_cert.subject_key_id)
            new_child_cert = self._issue_rc(
                subject=old_cert.subject,
                subject_public_key=old_cert.subject_key,
                ip_resources=old_cert.ip_resources,
                as_resources=old_cert.as_resources,
                sia=old_cert.sia,
                sia_mirrors=list(old_cert.sia_mirrors),
                validity=_DEFAULT_RC_VALIDITY,
            )
            if child is not None:
                child.certificate = new_child_cert
        self._issued_roas.clear()
        for name, old_roa in old_roas.items():
            self.issue_roa(old_roa.asn, list(old_roa.prefixes), name=name)
        self.publish()

    # -- mirrors (multiple publication points) ---------------------------------------------

    def enable_mirror(self, uri: str, target: PublicationTarget) -> None:
        """Add a mirror publication point and re-certify with its URI.

        The multiple-publication-points hardening the paper points to as
        concurrent IETF work: the CA's products are published at several
        locations, and its certificate advertises all of them, so a
        relying party that cannot reach one (for instance because of the
        Section 6 circularity) falls back to the others.  The parent must
        reissue the RC so the mirror URI is covered by a signature.
        """
        self._mirrors.append((uri, target))
        if self._parent is not None:
            self._certificate = self._parent._issue_rc(
                subject=self.handle,
                subject_public_key=self._key.public,
                ip_resources=self._certificate.ip_resources,
                as_resources=self._certificate.as_resources,
                sia=self._certificate.sia,
                sia_mirrors=[u for u, _t in self._mirrors],
                validity=_DEFAULT_RC_VALIDITY,
            )
        self.publish()

    @property
    def mirror_uris(self) -> list[str]:
        return [uri for uri, _target in self._mirrors]

    # -- publication ---------------------------------------------------------------------

    @contextlib.contextmanager
    def deferred_publication(self):
        """Batch many mutations into a single :meth:`publish`.

        Each issuance normally republishes the whole point — CRL,
        manifest, every file — which makes bulk issuance of *k* objects
        cost O(k²).  Inside this context the per-mutation syncs collapse
        into one publish on exit (only if a mutation actually happened),
        restoring O(k)::

            with isp.deferred_publication():
                for prefix in prefixes:
                    isp.issue_roa(asn, prefix)

        Re-entrant: nested uses publish once, at the outermost exit.
        """
        if self._publish_deferred:
            yield self
            return
        self._publish_deferred = True
        try:
            yield self
        finally:
            self._publish_deferred = False
            if self._publish_pending:
                self._publish_pending = False
                self.publish()

    def publish(self, *, update_manifest: bool = True) -> None:
        """Synchronize the publication point with current issued objects.

        Writes every current child RC and ROA, a fresh CRL, and (unless
        *update_manifest* is false — fault injection) a fresh manifest
        covering exactly those files.  Files no longer issued are removed.
        Inside :meth:`deferred_publication` the sync is postponed to the
        context exit.
        """
        if self._publish_deferred:
            self._publish_pending = True
            return
        point = self.publication_point
        now = self._clock.now

        # Wire bytes and SHA-256 are both cached on the objects, so a sync
        # collects references — no per-publish re-encoding or re-hashing.
        desired: dict[str, bytes] = {}
        entries: dict[str, str] = {}
        for name, certificate in self._issued_certs.items():
            desired[name] = certificate.to_bytes()
            entries[name] = certificate.hash_hex
        for name, roa in self._issued_roas.items():
            desired[name] = roa.to_bytes()
            entries[name] = roa.hash_hex
        if self._contact is not None:
            desired[GHOSTBUSTERS_FILE] = self._contact.to_bytes()
            entries[GHOSTBUSTERS_FILE] = self._contact.hash_hex

        crl = build_crl(
            issuer_key=self._key,
            issuer_key_id=self.key_id,
            revoked_serials=self._revoked_serials,
            serial=self._take_serial(),
            this_update=now,
            next_update=now + _DEFAULT_CRL_WINDOW,
        )
        desired[CRL_FILE] = crl.to_bytes()
        entries[CRL_FILE] = crl.hash_hex

        if update_manifest:
            manifest = build_manifest(
                issuer_key=self._key,
                issuer_key_id=self.key_id,
                entries=entries,
                serial=self._take_serial(),
                this_update=now,
                next_update=now + _DEFAULT_CRL_WINDOW,
            )
            desired[MANIFEST_FILE] = manifest.to_bytes()
        else:
            existing = point.get(MANIFEST_FILE)
            if existing is not None:
                desired[MANIFEST_FILE] = existing

        targets = [point] + [target for _uri, target in self._mirrors]
        for target in targets:
            for name in list(target.names()):
                if name not in desired:
                    target.delete(name)
            for name, data in desired.items():
                if target.get(name) != data:
                    target.put(name, data)
            # Record a consistent historical state on targets that keep
            # history (the replay-fault substrate); plain dict-backed
            # targets without checkpoints are fine too.
            record = getattr(target, "checkpoint", None)
            if record is not None:
                record()


def cert_file_name(certificate: ResourceCertificate) -> str:
    """The stable publication file name of a child RC.

    Keyed by subject key id, so reissuing the same subject overwrites the
    old certificate — persistent names (paper, Section 3).
    """
    return f"{certificate.subject_key_id}.cer"


def _coerce_roa_prefixes(
    prefixes: list[RoaPrefix] | list[str] | str,
) -> list[RoaPrefix]:
    if isinstance(prefixes, str):
        prefixes = [prefixes]
    out: list[RoaPrefix] = []
    for item in prefixes:
        if isinstance(item, RoaPrefix):
            out.append(item)
        else:
            out.append(RoaPrefix.parse(item))
    return out
