"""Repository manifests (RFC 6486 profile).

A manifest lists every file a CA currently publishes at its publication
point, with the SHA-256 hash of each.  Manifests are the relying party's
only tool for *noticing that something is missing* — which the paper shows
matters enormously (Side Effect 6: an absent ROA does not merely downgrade
a route to "unknown"; a covering ROA can make it "invalid").

RFC 6486 deliberately leaves open what a relying party should do when the
repository contents disagree with the manifest ("the RFCs do not specify
what action should be taken", paper Section 4); the relying party in
:mod:`repro.rp` therefore takes an explicit strictness policy.
"""

from __future__ import annotations

from ..crypto import KeyPair, encode
from .objects import SignedObject

__all__ = ["Manifest", "build_manifest"]


class Manifest(SignedObject):
    """A signed snapshot of a publication point's directory listing."""

    TYPE = "mft"

    __slots__ = ("_entries",)

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None):
        super().__init__(payload, signature, encoded_payload=encoded_payload)
        self._entries = dict(payload["entries"])

    @property
    def entries(self) -> dict[str, str]:
        """Mapping of file name to SHA-256 hex of the file's bytes."""
        return dict(self._entries)

    @property
    def file_names(self) -> set[str]:
        return set(self._entries)

    def hash_of(self, file_name: str) -> str | None:
        return self._entries.get(file_name)

    @property
    def this_update(self) -> int:
        return self.payload["not_before"]

    @property
    def next_update(self) -> int:
        return self.payload["not_after"]

    def __repr__(self) -> str:
        return (
            f"Manifest(issuer={self.issuer_key_id!r}, serial={self.serial}, "
            f"files={sorted(self._entries)})"
        )


def build_manifest(
    *,
    issuer_key: KeyPair,
    issuer_key_id: str,
    entries: dict[str, str],
    serial: int,
    this_update: int,
    next_update: int,
) -> Manifest:
    """Sign a manifest over a file-name → SHA-256-hex listing."""
    payload = {
        "type": Manifest.TYPE,
        "serial": serial,
        "issuer_key_id": issuer_key_id,
        "entries": dict(sorted(entries.items())),
        "not_before": this_update,
        "not_after": next_update,
    }
    encoded_payload = encode(payload)
    signature = issuer_key.sign(encoded_payload)
    return Manifest(payload, signature, encoded_payload=encoded_payload)
