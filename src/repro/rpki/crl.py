"""Certificate revocation lists (RFC 5280 profile, RPKI-shaped).

The CRL is the *transparent* revocation channel: "relying parties could use
this list to detect and react to abusive revocations" (paper, Section 3).
The stealthy alternative — deleting or overwriting a published object
without touching the CRL — is exactly what Side Effect 2 is about, and the
monitor layer compares both channels to tell the two apart.
"""

from __future__ import annotations

from ..crypto import KeyPair, encode
from .objects import SignedObject

__all__ = ["Crl", "build_crl"]


class Crl(SignedObject):
    """A signed list of revoked certificate serial numbers."""

    TYPE = "crl"

    __slots__ = ("_revoked",)

    def __init__(self, payload: dict, signature: bytes, *,
                 encoded_payload: bytes | None = None):
        super().__init__(payload, signature, encoded_payload=encoded_payload)
        self._revoked = frozenset(payload["revoked_serials"])

    @property
    def revoked_serials(self) -> frozenset[int]:
        return self._revoked

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    @property
    def this_update(self) -> int:
        return self.payload["not_before"]

    @property
    def next_update(self) -> int:
        """When the next CRL is due; a CRL older than this is stale."""
        return self.payload["not_after"]

    def __repr__(self) -> str:
        return (
            f"Crl(issuer={self.issuer_key_id!r}, serial={self.serial}, "
            f"revoked={sorted(self._revoked)})"
        )


def build_crl(
    *,
    issuer_key: KeyPair,
    issuer_key_id: str,
    revoked_serials: set[int],
    serial: int,
    this_update: int,
    next_update: int,
) -> Crl:
    """Sign a CRL covering the given revoked serial numbers."""
    payload = {
        "type": Crl.TYPE,
        "serial": serial,
        "issuer_key_id": issuer_key_id,
        "revoked_serials": sorted(revoked_serials),
        "not_before": this_update,
        "not_after": next_update,
    }
    encoded_payload = encode(payload)
    signature = issuer_key.sign(encoded_payload)
    return Crl(payload, signature, encoded_payload=encoded_payload)
