"""Parsing fetched bytes back into typed RPKI objects.

Everything a relying party fetches comes through :func:`parse_object` —
this is where corrupted, truncated, or alien bytes get rejected, turning
the fault layer's injected noise into the "missing object" condition the
paper analyzes.
"""

from __future__ import annotations

from .cert import EECertificate, ResourceCertificate
from .crl import Crl
from .errors import ObjectFormatError
from .ghostbusters import GhostbustersRecord
from .manifest import Manifest
from .objects import SignedObject
from .roa import Roa

__all__ = ["parse_object", "OBJECT_TYPES"]

OBJECT_TYPES: dict[str, type[SignedObject]] = {
    ResourceCertificate.TYPE: ResourceCertificate,
    EECertificate.TYPE: EECertificate,
    Roa.TYPE: Roa,
    GhostbustersRecord.TYPE: GhostbustersRecord,
    Crl.TYPE: Crl,
    Manifest.TYPE: Manifest,
}


def parse_object(blob: bytes) -> SignedObject:
    """Parse serialized bytes into the right :class:`SignedObject` subclass.

    Raises :class:`ObjectFormatError` for anything structurally wrong:
    undecodable bytes, unknown type tags, or payloads that fail the
    subclass's own field validation.
    """
    payload, signature, encoded_payload = SignedObject.split_wire(blob)
    type_tag = payload.get("type")
    cls = OBJECT_TYPES.get(type_tag)
    if cls is None:
        raise ObjectFormatError(f"unknown object type {type_tag!r}")
    try:
        # The payload bytes are a slice of *blob* — the constructor reuses
        # them instead of re-encoding the dictionary it was handed.
        return cls(payload, signature, encoded_payload=encoded_payload)
    except ObjectFormatError:
        raise
    except Exception as exc:
        raise ObjectFormatError(f"malformed {type_tag} object: {exc}") from exc
