"""The publication-point protocol between authorities and repositories.

"RPKI objects are stored at directories that are controlled by their
issuer" (paper, Section 3): each CA has exactly one publication point and
unilaterally decides its contents.  The CA engine writes through this
small protocol; :mod:`repro.repository` provides the hosted implementation
whose *reachability* the Section 6 circularity analysis cares about.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

__all__ = ["PublicationTarget", "InMemoryPublicationPoint"]


@runtime_checkable
class PublicationTarget(Protocol):
    """What a CA needs from wherever its objects are published."""

    def put(self, name: str, data: bytes) -> None:
        """Create or overwrite the file *name*."""

    def delete(self, name: str) -> None:
        """Remove the file *name* (no error if absent)."""

    def get(self, name: str) -> bytes | None:
        """The current bytes of *name*, or None."""

    def names(self) -> Iterator[str]:
        """All current file names."""


class InMemoryPublicationPoint:
    """A plain dict-backed publication point.

    Used directly in unit tests and wrapped by the repository layer's
    hosted points.  Keeps a monotonic revision counter so monitors can
    cheaply detect "anything changed here?".
    """

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self._revision = 0

    @property
    def revision(self) -> int:
        """Bumped on every mutation."""
        return self._revision

    def put(self, name: str, data: bytes) -> None:
        if not name:
            raise ValueError("publication file name must be non-empty")
        self._files[name] = data
        self._revision += 1

    def delete(self, name: str) -> None:
        if self._files.pop(name, None) is not None:
            self._revision += 1

    def get(self, name: str) -> bytes | None:
        return self._files.get(name)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def snapshot(self) -> dict[str, bytes]:
        """A copy of the full current contents."""
        return dict(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files
