"""The publication-point protocol between authorities and repositories.

"RPKI objects are stored at directories that are controlled by their
issuer" (paper, Section 3): each CA has exactly one publication point and
unilaterally decides its contents.  The CA engine writes through this
small protocol; :mod:`repro.repository` provides the hosted implementation
whose *reachability* the Section 6 circularity analysis cares about.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Protocol, runtime_checkable

__all__ = ["DEFAULT_HISTORY_LIMIT", "PublicationTarget", "InMemoryPublicationPoint"]

# Checkpoints kept per point.  Enough for a replay attacker to reach back
# several publish cycles; bounded so long campaigns don't accumulate
# every state the point ever had.
DEFAULT_HISTORY_LIMIT = 8


@runtime_checkable
class PublicationTarget(Protocol):
    """What a CA needs from wherever its objects are published."""

    def put(self, name: str, data: bytes) -> None:
        """Create or overwrite the file *name*."""

    def delete(self, name: str) -> None:
        """Remove the file *name* (no error if absent)."""

    def get(self, name: str) -> bytes | None:
        """The current bytes of *name*, or None."""

    def names(self) -> Iterator[str]:
        """All current file names."""


class InMemoryPublicationPoint:
    """A plain dict-backed publication point.

    Used directly in unit tests and wrapped by the repository layer's
    hosted points.  Keeps a monotonic revision counter so monitors can
    cheaply detect "anything changed here?", and a bounded history of
    *checkpoints* — consistent past states recorded by the CA after each
    publish — which is exactly what a replaying authority (or a
    compromised repository) can serve instead of the current content:
    stale-but-signed, internally consistent, semantically outdated.
    """

    def __init__(self, *, history_limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if history_limit < 1:
            raise ValueError(f"history limit must be >= 1, got {history_limit}")
        self._files: dict[str, bytes] = {}
        self._revision = 0
        self._history: deque[dict[str, bytes]] = deque(maxlen=history_limit)

    @property
    def revision(self) -> int:
        """Bumped on every mutation."""
        return self._revision

    def put(self, name: str, data: bytes) -> None:
        if not name:
            raise ValueError("publication file name must be non-empty")
        self._files[name] = data
        self._revision += 1

    def delete(self, name: str) -> None:
        if self._files.pop(name, None) is not None:
            self._revision += 1

    def get(self, name: str) -> bytes | None:
        return self._files.get(name)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def snapshot(self) -> dict[str, bytes]:
        """A copy of the full current contents."""
        return dict(self._files)

    def checkpoint(self) -> None:
        """Record the current contents as a consistent historical state.

        The CA engine calls this after every :meth:`publish
        <repro.rpki.ca.CertificateAuthority.publish>` sync, so each
        checkpoint is a manifest-consistent view — the raw material of
        the Byzantine replay faults (:mod:`repro.repository.faults`).
        Identical consecutive states are collapsed.
        """
        if self._history and self._history[-1] == self._files:
            return
        self._history.append(dict(self._files))

    def checkpoints(self) -> tuple[dict[str, bytes], ...]:
        """Past consistent states, oldest first (bounded; copies)."""
        return tuple(dict(state) for state in self._history)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files
