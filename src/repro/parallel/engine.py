"""The deterministic work-scheduling layer over the worker pool.

Two fan-outs live here:

- :class:`ParallelEngine` — signature verification for the relying party.
  Before each validation pass, :meth:`ParallelEngine.precompute` walks the
  cache snapshot structurally (an over-approximation of the walk
  :class:`~repro.rp.PathValidator` is about to do), collects every
  signature check the pass could need, **deduplicates them through the
  content-addressed verification memo**, and dispatches only the novel
  ones to the pool in ordered batches.  The validator then runs its
  ordinary serial algorithm and finds every verdict already memoized.
  Because a verification verdict is a pure function of ``(key, message,
  signature)``, precomputing extra verdicts — or computing them in a
  different order, or in another process — cannot change any validation
  outcome: ``RelyingParty(workers=N)`` output is equal to the serial
  path's for every ``N``.

- :func:`prefill_keys` — keypair generation for
  :func:`repro.modelgen.build_deployment`.  A :class:`~repro.crypto.KeyFactory`
  derives an independent RNG stream per key index, so the next *n* keys of
  a factory's sequence are *n* independent jobs; the pool generates them
  in any order and the factory adopts each at its index, leaving the
  build byte-identical to the serial one.

The engine also acts as the validator's *reuse provider* when no
:class:`~repro.rp.incremental.IncrementalState` is attached: within one
refresh, a publication point already validated at the same instant with
the same fingerprint is replayed instead of recomputed, which removes the
discovery loop's round-over-round revalidation of the entire cache.  The
reuse rule is deliberately stricter than the incremental engine's
(``now`` must be *equal*, not merely on the same side of every validity
boundary), so no time-boundary bookkeeping is needed and reuse is
trivially exact.
"""

from __future__ import annotations

from ..crypto import RsaPublicKey
from ..crypto.keys import KeyFactory
from ..crypto.rsa import record_keygens, record_verifications
from ..repository.uri import RsyncUri
from ..rpki.cert import ResourceCertificate
from ..rpki.crl import Crl
from ..rpki.ghostbusters import GhostbustersRecord
from ..rpki.manifest import Manifest
from ..rpki.objects import SignedObject
from ..rpki.roa import Roa
from ..telemetry import MetricsRegistry, default_registry
from .jobs import KeygenJob, verify_job_for
from .pool import WorkerPool
from .worker import keygen_batch, verify_batch

__all__ = ["ParallelEngine", "prefill_keys"]


class _OwnedMemos:
    """Run-scoped memos for an engine with no IncrementalState attached."""

    def __init__(self):
        # Deferred import: repro.rp imports repro.parallel at module load,
        # so the reverse edge must not run until instances are built.
        from ..rp.incremental import ParseMemo, VerificationMemo

        self.verify_memo = VerificationMemo(max_entries=None)
        self.parse_memo = ParseMemo(max_entries=None)


class ParallelEngine:
    """Collects, deduplicates, and pool-dispatches verification work.

    Parameters
    ----------
    state:
        An object exposing ``verify_memo`` / ``parse_memo`` (in practice
        an :class:`~repro.rp.incremental.IncrementalState`) whose memos
        the engine shares — precomputed verdicts land where the
        incremental validator will look for them.  ``None`` gives the
        engine private memos that last one refresh.
    metrics:
        Registry for the dispatch counters (``None`` → process default).

    Lifecycle: the owning relying party opens a :class:`WorkerPool` per
    refresh and brackets the refresh with :meth:`begin_refresh` /
    :meth:`end_refresh`; :meth:`precompute` runs before every validation
    pass of the discovery loop.
    """

    def __init__(
        self,
        state=None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self._owns_memos = state is None
        self._state = _OwnedMemos() if state is None else state
        self._pool: WorkerPool | None = None
        # Minimum pending verify jobs before a dispatch; flushes happen on
        # publication-point boundaries so chunks always hold whole points.
        self.chunk_jobs = 2048
        # Point replay cache: CA key id -> (PointResult, now it was stored).
        self._points: dict[str, tuple] = {}
        self.points_reused = 0
        self.points_validated = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_jobs = self.metrics.counter(
            "repro_parallel_jobs_total",
            help="jobs dispatched to the worker pool, by kind",
            labelnames=("kind",),
        )
        self._m_deduped = self.metrics.counter(
            "repro_parallel_jobs_deduped_total",
            help="verification jobs skipped because the content-addressed "
                 "memo already held the verdict",
        )

    # -- refresh lifecycle ---------------------------------------------------

    def begin_refresh(self, pool: WorkerPool) -> None:
        """Attach the refresh's pool and reset the run-scoped caches."""
        self._pool = pool
        self._points.clear()
        if self._owns_memos:
            self._state = _OwnedMemos()

    def end_refresh(self) -> None:
        """Detach from the (about to close) pool."""
        self._pool = None
        self._points.clear()

    # -- the batch pre-pass --------------------------------------------------

    def precompute(
        self,
        trust_anchors: list[ResourceCertificate],
        cache_files: dict[str, dict[str, bytes]],
    ) -> int:
        """Batch-verify everything the next validation pass could need.

        Walks the certificate hierarchy through *cache_files* the way the
        validator will — trust anchors, their publication points, child
        certificates, recursively — but **optimistically**: no validity,
        revocation, or resource checks, just "which (object, key) pairs
        might get verified".  Over-approximation is safe (a verdict is
        pure; an unused one is merely wasted) and under-approximation is
        harmless (the validator falls back to an in-process check on a
        memo miss).

        Work is dispatched in **chunks aligned to publication-point
        boundaries** (at least :attr:`chunk_jobs` jobs per dispatch): at
        Internet scale a single all-points job list would hold hundreds
        of thousands of serialized (object, key) pairs at once, so the
        pending list is flushed to the pool point-by-point and peak job
        memory stays bounded regardless of snapshot size.  Returns the
        number of jobs dispatched.
        """
        if self._pool is None:
            raise RuntimeError("precompute() outside begin_refresh()")
        verify_memo = self._state.verify_memo
        jobs = []
        pending: list[tuple[SignedObject, RsaPublicKey]] = []
        queued: set = set()
        deduped = 0
        dispatched = 0

        def want(obj: SignedObject, key: RsaPublicKey) -> None:
            nonlocal deduped
            memo_key = (obj.hash_hex, key.cache_key)
            if memo_key in queued or verify_memo.contains(obj, key):
                deduped += 1
                return
            queued.add(memo_key)
            jobs.append(verify_job_for(obj, key))
            pending.append((obj, key))

        def flush() -> None:
            nonlocal dispatched
            if not jobs:
                return
            verdicts = self._pool.map_batches(verify_batch, jobs)
            accepted = sum(1 for verdict in verdicts if verdict)
            for (obj, key), verdict in zip(pending, verdicts):
                verify_memo.record(obj, key, verdict)
            # Workers ran uninstrumented; credit their work here, in the
            # parent, so repro_crypto_verify_total keeps its meaning.
            record_verifications(accepted, len(verdicts) - accepted)
            self._m_jobs.inc(len(jobs), kind="verify")
            dispatched += len(jobs)
            jobs.clear()
            pending.clear()

        seen: set[str] = set()
        stack: list[ResourceCertificate] = []
        for anchor in trust_anchors:
            want(anchor, anchor.subject_key)
            stack.append(anchor)
        while stack:
            ca_cert = stack.pop()
            if ca_cert.subject_key_id in seen:
                continue
            seen.add(ca_cert.subject_key_id)
            ca_key = ca_cert.subject_key
            for raw_uri in ca_cert.all_publication_uris:
                files = cache_files.get(str(RsyncUri.parse(raw_uri)))
                if not files:
                    continue
                for file_name in sorted(files):
                    try:
                        obj = self.parse(files[file_name])
                    except Exception:
                        continue  # never verified; nothing to precompute
                    if isinstance(obj, (Manifest, Crl)):
                        want(obj, ca_key)
                    elif isinstance(obj, ResourceCertificate):
                        if obj.issuer_key_id == ca_cert.subject_key_id:
                            want(obj, ca_key)
                            stack.append(obj)
                    elif isinstance(obj, (Roa, GhostbustersRecord)):
                        ee = obj.ee_cert
                        if ee.issuer_key_id == ca_cert.subject_key_id:
                            want(ee, ca_key)
                            want(obj, ee.subject_key)
            # One publication point fully collected: flush once enough
            # work has accumulated.  Chunks therefore hold whole points.
            if len(jobs) >= self.chunk_jobs:
                flush()

        flush()
        if deduped:
            self._m_deduped.inc(deduped)
        return dispatched

    # -- the reuse-provider protocol (PathValidator duck-types this) ---------

    def verify_object(self, obj: SignedObject, key: RsaPublicKey) -> bool:
        """Memoized signature check (misses verify in-process)."""
        return self._state.verify_memo.verify_object(obj, key)

    def parse(self, data: bytes) -> SignedObject:
        """Memoized parse."""
        return self._state.parse_memo.parse(data)

    def lookup(self, ca_key_id: str, fingerprint: tuple, now: int):
        """This refresh's cached point result, under the strict-reuse rule.

        Unlike :meth:`IncrementalState.lookup
        <repro.rp.incremental.IncrementalState.lookup>`, reuse requires
        the *identical* instant, not just the same time signature — any
        clock movement revalidates, which is exactly what the serial path
        does, so the conservatism can never change a result.
        """
        cached = self._points.get(ca_key_id)
        if cached is None:
            return None
        entry, stored_now = cached
        if entry.fingerprint != fingerprint or stored_now != now:
            return None
        return entry

    def store(self, ca_key_id: str, entry, now: int | None = None) -> None:
        self._points[ca_key_id] = (entry, now)

    def count_reused(self, entry) -> None:
        self.points_reused += 1

    def count_validated(self) -> None:
        self.points_validated += 1


def prefill_keys(factory: KeyFactory, count: int, pool: WorkerPool) -> int:
    """Generate the next *count* keys of *factory*'s sequence via *pool*.

    Only indices absent from the factory's process-wide cache become
    jobs; each job carries its index's independent stream seed, so the
    generated keys are bit-identical to what serial
    :meth:`~repro.crypto.KeyFactory.next_keypair` calls would produce.
    Returns the number of keypairs actually generated.
    """
    missing = factory.missing_indices(count)
    if not missing:
        return 0
    jobs = [
        KeygenJob(bits=factory.bits, stream_seed=factory.stream_seed(index))
        for index in missing
    ]
    keys = pool.map_batches(keygen_batch, jobs)
    for index, private in zip(missing, keys):
        factory.adopt(index, private)
    record_keygens(len(missing))
    pool.metrics.counter(
        "repro_parallel_jobs_total",
        help="jobs dispatched to the worker pool, by kind",
        labelnames=("kind",),
    ).inc(len(missing), kind="keygen")
    return len(missing)
