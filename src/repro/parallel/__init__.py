"""Deterministic process-pool parallelism for validation and keygen.

The reproduction's cold costs — RSA signature verification across every
publication point of a refresh, and keypair generation when
:func:`repro.modelgen.build_deployment` builds a model RPKI — are
embarrassingly parallel piles of pure functions.  This package schedules
them across a ``multiprocessing`` pool without giving up a single
deterministic property:

- :class:`WorkerPool` — a context-managed pool (never module-level; the
  telemetry lint enforces it) with chunked submission, strictly ordered
  result reassembly, in-parent exception propagation, and a serial
  in-process fallback for ``workers=0`` or platforms without a usable
  start method.
- :class:`ParallelEngine` — collects the signature checks a validation
  pass will need, deduplicates them through the content-addressed
  verification memo, dispatches only the novel ones, and replays
  already-validated publication points within a refresh.
  ``RelyingParty(workers=N)`` produces a ``ValidationRun`` equal to the
  serial path's for every ``N``.
- :func:`prefill_keys` — fans a :class:`~repro.crypto.KeyFactory`'s
  independent per-index RNG streams out across the pool; builds stay
  byte-identical to serial ones.

Workers only ever run the uninstrumented ``*_raw`` crypto entry points;
the parent credits their work to its registry afterwards
(:func:`repro.crypto.rsa.record_verifications` /
:func:`~repro.crypto.rsa.record_keygens`), so telemetry stays
single-process truthful.  See docs/performance.md for the job model and
when ``workers > 0`` pays off.
"""

from .jobs import KeygenJob, VerifyJob, verify_job_for
from .pool import DEFAULT_CHUNK_JOBS, WorkerPool
from .engine import ParallelEngine, prefill_keys
from .worker import keygen_batch, registry_probe, verify_batch

__all__ = [
    "DEFAULT_CHUNK_JOBS",
    "KeygenJob",
    "ParallelEngine",
    "VerifyJob",
    "WorkerPool",
    "keygen_batch",
    "prefill_keys",
    "registry_probe",
    "verify_batch",
    "verify_job_for",
]
