"""The functions that run inside pool worker processes.

Everything here is a module-level pure function over one *chunk* of jobs
(picklable by reference under every start method), and none of it touches
the telemetry registry: a worker's counter increments would either be
invisible to the parent (``spawn``) or double-book against a stale
``fork``-inherited copy of the registry, so workers compute and return,
and the parent credits the aggregate through
:func:`repro.crypto.rsa.record_verifications` /
:func:`~repro.crypto.rsa.record_keygens`.  ``tests/parallel`` asserts the
isolation by snapshotting a worker's registry before and after a batch.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..crypto.rsa import RsaPrivateKey, generate_keypair_raw, verify_raw
from .jobs import KeygenJob, VerifyJob

__all__ = ["keygen_batch", "registry_probe", "verify_batch"]

# The crypto counters whose isolation the probe reports on.
_PROBED_COUNTERS = (
    "repro_crypto_verify_total",
    "repro_crypto_keygen_total",
    "repro_crypto_sign_total",
)


def verify_batch(jobs: Sequence[VerifyJob]) -> list[bool]:
    """Verdicts for one chunk of verify jobs, in submission order."""
    return [
        verify_raw(job.modulus, job.exponent, job.message, job.signature)
        for job in jobs
    ]


def keygen_batch(jobs: Sequence[KeygenJob]) -> list[RsaPrivateKey]:
    """Keypairs for one chunk of keygen jobs, in submission order."""
    return [
        generate_keypair_raw(job.bits, random.Random(job.stream_seed))
        for job in jobs
    ]


def registry_probe(jobs: Iterable[object]) -> list[dict[str, float]]:
    """This process's crypto-counter totals, one snapshot per job.

    A test instrument, dispatched through the same pool as real batches:
    two probes bracketing a pile of verify/keygen work must return equal
    snapshots, proving the worker functions never increment the (possibly
    fork-inherited) registry copy living in the worker process.
    """
    from ..telemetry import default_registry

    registry = default_registry()
    snapshot: dict[str, float] = {}
    for name in _PROBED_COUNTERS:
        counter = registry.get(name)
        if counter is None:
            snapshot[name] = 0.0
        elif counter.labelnames:
            snapshot[name] = sum(
                child.value for _labels, child in counter.samples()
            )
        else:
            snapshot[name] = counter.value()
    return [dict(snapshot) for _ in jobs]
