"""A context-managed ``multiprocessing`` pool with ordered batch dispatch.

:class:`WorkerPool` is the only place in the package that creates OS
processes, and it is strictly scope-bound: the pool exists between
``__enter__`` and ``__exit__`` and nowhere else.  The telemetry lint
(``tools/check_telemetry_names.py``) statically rejects module-level pool
construction anywhere under ``src/repro`` — a pool that outlives its
``with`` block leaks processes past the work that justified them.

Determinism contract
--------------------

``map_batches(func, jobs)`` chunks *jobs* in submission order, dispatches
the chunks through ``Pool.map`` (which returns results in submission
order regardless of which worker ran what, and re-raises the first worker
exception in the parent), and reassembles the flat result list.  Because
every job is a pure function of its own fields, the output is equal for
any worker count — including zero: with ``workers=0``, or when the
requested start method is unavailable on the platform, the pool degrades
to calling *func* in-process, same chunking, same ordering, no processes.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence, TypeVar

from ..simtime import Clock
from ..telemetry import MetricsRegistry, default_registry

__all__ = ["DEFAULT_CHUNK_JOBS", "WorkerPool"]

# Jobs per dispatched chunk.  Large enough that pickling and IPC amortize
# over many modular exponentiations, small enough that a typical refresh
# still spreads across every worker.
DEFAULT_CHUNK_JOBS = 256

# Tried in order when no explicit start method is requested.  fork is the
# cheapest by far (no interpreter re-exec, test-module functions pickle by
# reference); the others keep the pool usable where fork is unavailable.
_PREFERRED_START_METHODS = ("fork", "forkserver", "spawn")

_J = TypeVar("_J")
_R = TypeVar("_R")


class WorkerPool:
    """A fixed-size process pool, alive only inside its ``with`` block.

    Parameters
    ----------
    workers:
        Worker process count.  ``0`` never forks: every batch runs
        in-process (the serial fallback the rest of the package treats as
        the semantic baseline).
    chunk_jobs:
        Jobs per dispatched chunk (see :data:`DEFAULT_CHUNK_JOBS`).
    start_method:
        Explicit ``multiprocessing`` start method.  ``None`` picks the
        first available of :data:`_PREFERRED_START_METHODS`; a method the
        platform does not offer triggers the serial fallback instead of
        an error, so callers never need platform probes.
    metrics / clock:
        Registry for the pool-size gauge and batch-latency histogram, and
        the simulated clock that times the latter (durations are
        simulated seconds, like every trace in this repository).
    """

    def __init__(
        self,
        workers: int,
        *,
        chunk_jobs: int = DEFAULT_CHUNK_JOBS,
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
    ):
        if workers < 0:
            raise ValueError(f"worker count must be >= 0, got {workers}")
        if chunk_jobs < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_jobs}")
        self.workers = workers
        self.chunk_jobs = chunk_jobs
        self.start_method = start_method
        self.metrics = metrics if metrics is not None else default_registry()
        self.clock = clock if clock is not None else Clock()
        self._pool = None
        self._entered = False
        self._m_workers = self.metrics.gauge(
            "repro_parallel_pool_workers",
            help="worker processes of the currently open pool (0 = serial)",
        )
        self._m_batches = self.metrics.counter(
            "repro_parallel_batches_total",
            help="map_batches dispatches, by execution mode",
            labelnames=("mode",),
        )

    @property
    def is_parallel(self) -> bool:
        """True when an OS-process pool is actually open."""
        return self._pool is not None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self._entered = True
        if self.workers > 0:
            self._pool = self._open_pool()
        self._m_workers.set(self.workers if self._pool is not None else 0)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._pool is not None:
            if exc_type is None:
                self._pool.close()
            else:
                self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._entered = False
        self._m_workers.set(0)
        return False

    def _open_pool(self):
        method = self.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            for preferred in _PREFERRED_START_METHODS:
                if preferred in available:
                    method = preferred
                    break
        try:
            context = multiprocessing.get_context(method)
            return context.Pool(processes=self.workers)
        except (ValueError, OSError):
            # Unknown/unsupported start method, or the platform refused to
            # spawn (sandboxes, resource limits): degrade to serial.
            return None

    # -- dispatch ------------------------------------------------------------

    def map_batches(
        self, func: Callable[[Sequence[_J]], Sequence[_R]], jobs: Iterable[_J]
    ) -> list[_R]:
        """Run ``func`` over chunks of *jobs*; results in submission order.

        *func* receives one chunk (a tuple of jobs) and must return one
        result per job, in order.  A worker exception propagates to the
        caller exactly as it would in-process.  Chunk results are length-
        checked before reassembly so an ill-behaved *func* fails loudly
        instead of silently misaligning jobs and results.
        """
        if not self._entered:
            raise RuntimeError("WorkerPool used outside its 'with' block")
        jobs = list(jobs)
        if not jobs:
            return []
        chunks = [
            tuple(jobs[i:i + self.chunk_jobs])
            for i in range(0, len(jobs), self.chunk_jobs)
        ]
        mode = "pooled" if self._pool is not None else "serial"
        with self.metrics.trace(
            "repro_parallel_batch_seconds", self.clock, mode=mode
        ):
            if self._pool is not None:
                chunk_results = self._pool.map(func, chunks)
            else:
                chunk_results = [func(chunk) for chunk in chunks]
        self._m_batches.inc(mode=mode)
        out: list[_R] = []
        for chunk, result in zip(chunks, chunk_results):
            if len(result) != len(chunk):
                raise RuntimeError(
                    f"batch function returned {len(result)} results "
                    f"for {len(chunk)} jobs"
                )
            out.extend(result)
        return out
