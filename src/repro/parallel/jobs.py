"""Pickle-safe job descriptions for the process-pool scheduling layer.

A job carries *only* plain integers and bytes — no :class:`SignedObject`
graph, no key objects with methods bound to parent-process state — so the
cost of shipping one to a worker is a small pickle, and nothing about the
parent's registries, caches, or clocks leaks across the process boundary.
Both job types are pure descriptions: executing the same job twice (or in
two different processes) yields the same answer, which is what lets
:mod:`repro.parallel.pool` reassemble results in submission order and
guarantee output identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import RsaPublicKey
from ..rpki.objects import SignedObject

__all__ = ["KeygenJob", "VerifyJob", "verify_job_for"]


@dataclass(frozen=True)
class VerifyJob:
    """One RSA signature check: ``verify_raw(modulus, exponent, ...)``."""

    modulus: int
    exponent: int
    message: bytes
    signature: bytes


@dataclass(frozen=True)
class KeygenJob:
    """One keypair of a :class:`~repro.crypto.KeyFactory` sequence.

    ``stream_seed`` is the factory's per-index RNG seed
    (:meth:`~repro.crypto.KeyFactory.stream_seed`), so each job is
    independent of every other — the property that makes keygen fan-out
    order-free and therefore reproducible at any worker count.
    """

    bits: int
    stream_seed: int


def verify_job_for(obj: SignedObject, key: RsaPublicKey) -> VerifyJob:
    """The :class:`VerifyJob` equivalent of ``obj.verify_signature(key)``."""
    return VerifyJob(
        modulus=key.modulus,
        exponent=key.exponent,
        message=obj.signed_bytes,
        signature=obj.signature,
    )
